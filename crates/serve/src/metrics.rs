//! Daemon metrics: lock-free counters rendered as Prometheus text.
//!
//! Every counter is an [`AtomicU64`] bumped on the request path with
//! relaxed ordering (metrics never synchronise anything), and the
//! `/metrics` endpoint renders the standard text exposition format
//! (`# HELP` / `# TYPE` / samples). Request latencies go into a fixed
//! cumulative-bucket histogram, Prometheus-style, with bounds chosen for
//! a local daemon (100µs – 2.5s).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The routes the daemon distinguishes in per-route counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// `POST /v1/units`
    IngestUnits,
    /// `GET /v1/rules`
    Rules,
    /// `GET /v1/items` (per-item window supports)
    Items,
    /// `GET /v1/health`
    Health,
    /// `GET /metrics`
    Metrics,
    /// `POST /v1/shutdown`
    Shutdown,
    /// `GET /v1/debug/profile`
    DebugProfile,
    /// `GET /v1/debug/events`
    DebugEvents,
    /// `GET /v1/debug/spans` (per-process trace-span ring)
    DebugSpans,
    /// `GET /v1/debug/traces` (router-side assembled traces)
    DebugTraces,
    /// Anything else (404s, bad requests).
    Other,
}

impl Route {
    const ALL: [Route; 11] = [
        Route::IngestUnits,
        Route::Rules,
        Route::Items,
        Route::Health,
        Route::Metrics,
        Route::Shutdown,
        Route::DebugProfile,
        Route::DebugEvents,
        Route::DebugSpans,
        Route::DebugTraces,
        Route::Other,
    ];

    fn index(self) -> usize {
        match self {
            Route::IngestUnits => 0,
            Route::Rules => 1,
            Route::Items => 2,
            Route::Health => 3,
            Route::Metrics => 4,
            Route::Shutdown => 5,
            Route::DebugProfile => 6,
            Route::DebugEvents => 7,
            Route::DebugSpans => 8,
            Route::DebugTraces => 9,
            Route::Other => 10,
        }
    }

    /// The metric/log label for this route, e.g. `rules`. Public so the
    /// connection loop (and the shard router) can stamp the route onto
    /// trace-span attributes and log lines with the exact string the
    /// `/metrics` labels use.
    pub fn label(self) -> &'static str {
        match self {
            Route::IngestUnits => "ingest_units",
            Route::Rules => "rules",
            Route::Items => "items",
            Route::Health => "health",
            Route::Metrics => "metrics",
            Route::Shutdown => "shutdown",
            Route::DebugProfile => "debug_profile",
            Route::DebugEvents => "debug_events",
            Route::DebugSpans => "debug_spans",
            Route::DebugTraces => "debug_traces",
            Route::Other => "other",
        }
    }
}

/// Histogram bucket upper bounds, in microseconds — the workspace-wide
/// const, shared with car-load's client-side histogram so server-side
/// and client-side latency distributions stay directly comparable.
const BUCKET_BOUNDS_US: [u64; 10] = car_obs::LATENCY_BUCKET_BOUNDS_US;

/// Status classes tracked per route.
const CLASSES: [&str; 3] = ["2xx", "4xx", "5xx"];

#[derive(Default)]
struct RouteCounters {
    by_class: [AtomicU64; 3],
    latency_buckets: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    latency_sum_us: AtomicU64,
    latency_count: AtomicU64,
}

/// All daemon counters. Cheap to share behind an `Arc`.
#[derive(Default)]
pub struct Metrics {
    requests: [RouteCounters; 11],
    latency_buckets: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    latency_sum_us: AtomicU64,
    latency_count: AtomicU64,
    units_ingested: AtomicU64,
    transactions_ingested: AtomicU64,
    ingest_rejected: AtomicU64,
    parse_errors: AtomicU64,
    query_cache_hits: AtomicU64,
    query_cache_misses: AtomicU64,
    wal_bytes: AtomicU64,
    wal_fsyncs: AtomicU64,
    wal_errors: AtomicU64,
    snapshots: AtomicU64,
    recovery_truncated: AtomicU64,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records one completed request: route, status code, latency.
    pub fn record_request(&self, route: Route, status: u16, latency: Duration) {
        let class = match status {
            200..=299 => 0,
            500..=599 => 2,
            _ => 1,
        };
        self.requests[route.index()].by_class[class].fetch_add(1, Ordering::Relaxed);
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let bucket = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
        let per_route = &self.requests[route.index()];
        per_route.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        per_route.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        per_route.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a successfully enqueued unit with its transaction count.
    pub fn record_ingest(&self, transactions: u64) {
        self.units_ingested.fetch_add(1, Ordering::Relaxed);
        self.transactions_ingested.fetch_add(transactions, Ordering::Relaxed);
    }

    /// Records a unit rejected by backpressure (503).
    pub fn record_ingest_rejected(&self) {
        self.ingest_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a rules query served from the epoch-keyed cache.
    pub fn record_query_cache_hit(&self) {
        self.query_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a rules query that had to assemble its body from miner
    /// state.
    pub fn record_query_cache_miss(&self) {
        self.query_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Total rules queries served from the cache.
    pub fn query_cache_hits(&self) -> u64 {
        self.query_cache_hits.load(Ordering::Relaxed)
    }

    /// Total rules queries that missed the cache.
    pub fn query_cache_misses(&self) -> u64 {
        self.query_cache_misses.load(Ordering::Relaxed)
    }

    /// Records a request that failed HTTP parsing.
    pub fn record_parse_error(&self) {
        self.parse_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a successful WAL append of `bytes` on-disk bytes.
    pub fn record_wal_append(&self, bytes: u64) {
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one WAL fsync.
    pub fn record_wal_fsync(&self) {
        self.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a durability-layer failure (failed append/fsync/snapshot).
    pub fn record_wal_error(&self) {
        self.wal_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed snapshot.
    pub fn record_snapshot(&self) {
        self.snapshots.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` WAL records discarded by boot recovery (torn/corrupt
    /// tails and untrusted segments after them).
    pub fn record_recovery_truncated(&self, n: u64) {
        self.recovery_truncated.fetch_add(n, Ordering::Relaxed);
    }

    /// Total requests recorded across all routes and classes.
    pub fn total_requests(&self) -> u64 {
        self.requests
            .iter()
            .flat_map(|r| r.by_class.iter())
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Total units ingested.
    pub fn units_ingested(&self) -> u64 {
        self.units_ingested.load(Ordering::Relaxed)
    }

    /// Total WAL fsyncs performed.
    pub fn wal_fsyncs(&self) -> u64 {
        self.wal_fsyncs.load(Ordering::Relaxed)
    }

    /// Total bytes appended to the WAL.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes.load(Ordering::Relaxed)
    }

    /// Total durability-layer failures.
    pub fn wal_errors(&self) -> u64 {
        self.wal_errors.load(Ordering::Relaxed)
    }

    /// Total snapshots written.
    pub fn snapshots(&self) -> u64 {
        self.snapshots.load(Ordering::Relaxed)
    }

    /// Total WAL records discarded by recovery.
    pub fn recovery_truncated(&self) -> u64 {
        self.recovery_truncated.load(Ordering::Relaxed)
    }

    /// Renders the Prometheus exposition text. `gauges` supplies
    /// point-in-time values owned by other subsystems (queue depth,
    /// retained rules, ...), each as `(name, help, value)`.
    pub fn render_prometheus(&self, gauges: &[(&str, &str, f64)]) -> String {
        let mut out = String::with_capacity(2048);

        out.push_str("# HELP car_http_requests_total HTTP requests served, by route and status class.\n");
        out.push_str("# TYPE car_http_requests_total counter\n");
        for route in Route::ALL {
            for (ci, class) in CLASSES.iter().enumerate() {
                let n = self.requests[route.index()].by_class[ci].load(Ordering::Relaxed);
                out.push_str(&format!(
                    "car_http_requests_total{{route=\"{}\",status=\"{}\"}} {}\n",
                    route.label(),
                    class,
                    n
                ));
            }
        }

        out.push_str(
            "# HELP car_http_request_duration_seconds Request handling latency.\n",
        );
        out.push_str("# TYPE car_http_request_duration_seconds histogram\n");
        let mut cumulative = 0u64;
        for (i, bound) in BUCKET_BOUNDS_US.iter().enumerate() {
            cumulative += self.latency_buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "car_http_request_duration_seconds_bucket{{le=\"{}\"}} {}\n",
                *bound as f64 / 1e6,
                cumulative
            ));
        }
        cumulative +=
            self.latency_buckets[BUCKET_BOUNDS_US.len()].load(Ordering::Relaxed);
        out.push_str(&format!(
            "car_http_request_duration_seconds_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!(
            "car_http_request_duration_seconds_sum {}\n",
            self.latency_sum_us.load(Ordering::Relaxed) as f64 / 1e6
        ));
        out.push_str(&format!(
            "car_http_request_duration_seconds_count {}\n",
            self.latency_count.load(Ordering::Relaxed)
        ));

        // Per-route latency histograms on the same shared bucket bounds,
        // so a slow endpoint is visible without a client-side breakdown.
        out.push_str(
            "# HELP car_request_duration_seconds Request handling latency by route.\n",
        );
        out.push_str("# TYPE car_request_duration_seconds histogram\n");
        for route in Route::ALL {
            let counters = &self.requests[route.index()];
            let mut cumulative = 0u64;
            for (i, bound) in BUCKET_BOUNDS_US.iter().enumerate() {
                cumulative += counters.latency_buckets[i].load(Ordering::Relaxed);
                out.push_str(&format!(
                    "car_request_duration_seconds_bucket{{route=\"{}\",le=\"{}\"}} {}\n",
                    route.label(),
                    *bound as f64 / 1e6,
                    cumulative
                ));
            }
            cumulative +=
                counters.latency_buckets[BUCKET_BOUNDS_US.len()].load(Ordering::Relaxed);
            out.push_str(&format!(
                "car_request_duration_seconds_bucket{{route=\"{}\",le=\"+Inf\"}} {}\n",
                route.label(),
                cumulative
            ));
            out.push_str(&format!(
                "car_request_duration_seconds_sum{{route=\"{}\"}} {}\n",
                route.label(),
                counters.latency_sum_us.load(Ordering::Relaxed) as f64 / 1e6
            ));
            out.push_str(&format!(
                "car_request_duration_seconds_count{{route=\"{}\"}} {}\n",
                route.label(),
                counters.latency_count.load(Ordering::Relaxed)
            ));
        }

        for (name, help, counter) in [
            (
                "car_units_ingested_total",
                "Time units accepted into the ingest queue.",
                &self.units_ingested,
            ),
            (
                "car_transactions_ingested_total",
                "Transactions accepted across all ingested units.",
                &self.transactions_ingested,
            ),
            (
                "car_ingest_rejected_total",
                "Units rejected because the ingest queue was full.",
                &self.ingest_rejected,
            ),
            (
                "car_http_parse_errors_total",
                "Requests rejected by the HTTP parser.",
                &self.parse_errors,
            ),
            (
                "car_query_cache_hits",
                "Rules queries served from the epoch-keyed response cache.",
                &self.query_cache_hits,
            ),
            (
                "car_query_cache_misses",
                "Rules queries assembled from miner state (cache miss).",
                &self.query_cache_misses,
            ),
            (
                "car_wal_bytes_total",
                "Bytes appended to the write-ahead log.",
                &self.wal_bytes,
            ),
            (
                "car_wal_fsyncs_total",
                "Write-ahead log fsyncs performed.",
                &self.wal_fsyncs,
            ),
            (
                "car_wal_errors_total",
                "Durability-layer failures (append, fsync, snapshot).",
                &self.wal_errors,
            ),
            ("car_snapshots_total", "Window snapshots written.", &self.snapshots),
            (
                "car_recovery_truncated_records",
                "WAL records discarded by boot recovery (torn or corrupt).",
                &self.recovery_truncated,
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n"));
            out.push_str(&format!("# TYPE {name} counter\n"));
            out.push_str(&format!("{name} {}\n", counter.load(Ordering::Relaxed)));
        }

        // Process-global mining counters (car-obs): the paper's three
        // INTERLEAVED optimizations plus the work actually performed.
        let mine = car_obs::counters::MINE.snapshot();
        for (name, help, value) in [
            ("car_mine_runs_total", "Completed mining runs in this process.", mine.runs),
            (
                "car_mine_candidates_generated_total",
                "Candidate itemsets generated across mining runs.",
                mine.candidates_generated,
            ),
            (
                "car_mine_candidates_pruned_total",
                "Candidates discarded by INTERLEAVED cycle pruning.",
                mine.candidates_pruned,
            ),
            (
                "car_mine_unit_counts_skipped_total",
                "Per-unit support counts avoided by INTERLEAVED cycle skipping.",
                mine.unit_counts_skipped,
            ),
            (
                "car_mine_cycles_eliminated_total",
                "Candidate cycles killed by INTERLEAVED cycle elimination.",
                mine.cycles_eliminated,
            ),
            (
                "car_mine_support_computations_total",
                "Itemset-per-unit support computations performed.",
                mine.support_computations,
            ),
            (
                "car_mine_bitmap_builds_total",
                "Vertical tid-bitmap constructions by the counting kernel.",
                mine.bitmap_builds,
            ),
            (
                "car_mine_detect_eliminations_total",
                "Cycles discarded by the a-posteriori detector (detect_cycles).",
                mine.detect_eliminations,
            ),
            (
                "car_mine_online_holds_total",
                "Rule-unit hold entries folded into online cycle state at push.",
                mine.online_holds,
            ),
            (
                "car_mine_online_eliminations_total",
                "Candidate cycle classes found dead at online view assembly.",
                mine.online_eliminations,
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n"));
            out.push_str(&format!("# TYPE {name} counter\n"));
            out.push_str(&format!("{name} {value}\n"));
        }

        // Process-global resilience counters (car-obs): overload
        // shedding and deadline enforcement. Always rendered, even at
        // zero, so dashboards and the chaos-smoke CI grep can rely on
        // the series existing.
        let res = car_obs::counters::RESILIENCE.snapshot();
        for (name, help, value) in [
            (
                "car_shed_total",
                "Requests shed by the admission gate (503 overloaded).",
                res.shed,
            ),
            (
                "car_header_timeouts_total",
                "Connections dropped for exceeding the header-read deadline.",
                res.header_timeouts,
            ),
            (
                "car_deadline_exceeded_total",
                "Requests answered 504 because their deadline budget expired.",
                res.deadline_exceeded,
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n"));
            out.push_str(&format!("# TYPE {name} counter\n"));
            out.push_str(&format!("{name} {value}\n"));
        }

        // Trace tail-retention counters (car-obs). Always rendered, even
        // at zero, so the CI grep and dashboards can rely on the family.
        let trace = car_obs::counters::TRACE.snapshot();
        out.push_str(
            "# HELP car_trace_retained_total Traces retained by tail sampling, by reason.\n",
        );
        out.push_str("# TYPE car_trace_retained_total counter\n");
        for (reason, value) in [
            ("error", trace.retained_error),
            ("slow", trace.retained_slow),
            ("sampled", trace.retained_sampled),
        ] {
            out.push_str(&format!(
                "car_trace_retained_total{{reason=\"{reason}\"}} {value}\n"
            ));
        }
        out.push_str(
            "# HELP car_trace_discarded_total Healthy traces the tail sampler let go.\n",
        );
        out.push_str("# TYPE car_trace_discarded_total counter\n");
        out.push_str(&format!("car_trace_discarded_total {}\n", trace.discarded));

        // Span profile summaries (car-obs flat profile). Sum/count give
        // Prometheus a rate-able average; the observed maximum rides
        // along as a gauge since summaries cannot carry it.
        let profile = car_obs::profile_snapshot();
        out.push_str(
            "# HELP car_span_duration_seconds Time spent inside instrumented spans.\n",
        );
        out.push_str("# TYPE car_span_duration_seconds summary\n");
        for stat in &profile {
            out.push_str(&format!(
                "car_span_duration_seconds_sum{{span=\"{}\"}} {}\n",
                stat.name,
                stat.total_ns as f64 / 1e9
            ));
            out.push_str(&format!(
                "car_span_duration_seconds_count{{span=\"{}\"}} {}\n",
                stat.name, stat.count
            ));
        }
        out.push_str(
            "# HELP car_span_duration_max_seconds Longest single recorded span duration.\n",
        );
        out.push_str("# TYPE car_span_duration_max_seconds gauge\n");
        for stat in &profile {
            out.push_str(&format!(
                "car_span_duration_max_seconds{{span=\"{}\"}} {}\n",
                stat.name,
                stat.max_ns as f64 / 1e9
            ));
        }

        for (name, help, value) in gauges {
            out.push_str(&format!("# HELP {name} {help}\n"));
            out.push_str(&format!("# TYPE {name} gauge\n"));
            out.push_str(&format!("{name} {value}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_requests_by_class() {
        let m = Metrics::new();
        m.record_request(Route::Rules, 200, Duration::from_micros(300));
        m.record_request(Route::Rules, 404, Duration::from_micros(50));
        m.record_request(Route::IngestUnits, 503, Duration::from_micros(80));
        assert_eq!(m.total_requests(), 3);
        let text = m.render_prometheus(&[]);
        assert!(
            text.contains("car_http_requests_total{route=\"rules\",status=\"2xx\"} 1")
        );
        assert!(
            text.contains("car_http_requests_total{route=\"rules\",status=\"4xx\"} 1")
        );
        assert!(text.contains(
            "car_http_requests_total{route=\"ingest_units\",status=\"5xx\"} 1"
        ));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.record_request(Route::Health, 200, Duration::from_micros(90));
        m.record_request(Route::Health, 200, Duration::from_micros(400));
        m.record_request(Route::Health, 200, Duration::from_secs(10));
        let text = m.render_prometheus(&[]);
        assert!(
            text.contains("car_http_request_duration_seconds_bucket{le=\"0.0001\"} 1")
        );
        assert!(
            text.contains("car_http_request_duration_seconds_bucket{le=\"0.0005\"} 2")
        );
        assert!(text.contains("car_http_request_duration_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("car_http_request_duration_seconds_count 3"));
    }

    #[test]
    fn mining_and_span_sections_render() {
        let m = Metrics::new();
        let text = m.render_prometheus(&[]);
        // The paper's three INTERLEAVED optimization counters are always
        // present, even before any mining run.
        assert!(text.contains("# TYPE car_mine_candidates_pruned_total counter"));
        assert!(text.contains("# TYPE car_mine_unit_counts_skipped_total counter"));
        assert!(text.contains("# TYPE car_mine_cycles_eliminated_total counter"));
        assert!(text.contains("# TYPE car_mine_runs_total counter"));
        assert!(text.contains("# TYPE car_span_duration_seconds summary"));
        assert!(text.contains("# TYPE car_span_duration_max_seconds gauge"));
        // Resilience counters exist at zero so scrapes can rely on them.
        assert!(text.contains("# TYPE car_shed_total counter"));
        assert!(text.contains("# TYPE car_header_timeouts_total counter"));
        assert!(text.contains("# TYPE car_deadline_exceeded_total counter"));
        // The trace-retention family exists at zero for the same reason.
        assert!(text.contains("# TYPE car_trace_retained_total counter"));
        assert!(text.contains("car_trace_retained_total{reason=\"error\"}"));
        assert!(text.contains("car_trace_retained_total{reason=\"slow\"}"));
        assert!(text.contains("car_trace_retained_total{reason=\"sampled\"}"));
        assert!(text.contains("# TYPE car_trace_discarded_total counter"));
    }

    #[test]
    fn per_route_latency_histogram_renders() {
        let m = Metrics::new();
        m.record_request(Route::Rules, 200, Duration::from_micros(90));
        m.record_request(Route::Rules, 200, Duration::from_micros(400));
        m.record_request(Route::Health, 200, Duration::from_micros(90));
        let text = m.render_prometheus(&[]);
        assert!(text.contains("# TYPE car_request_duration_seconds histogram"));
        assert!(text.contains(
            "car_request_duration_seconds_bucket{route=\"rules\",le=\"0.0001\"} 1"
        ));
        assert!(text.contains(
            "car_request_duration_seconds_bucket{route=\"rules\",le=\"+Inf\"} 2"
        ));
        assert!(text.contains("car_request_duration_seconds_count{route=\"rules\"} 2"));
        assert!(text.contains("car_request_duration_seconds_count{route=\"health\"} 1"));
        assert!(
            text.contains("car_request_duration_seconds_count{route=\"debug_traces\"} 0")
        );
    }

    #[test]
    fn ingest_counters_and_gauges() {
        let m = Metrics::new();
        m.record_ingest(120);
        m.record_ingest(80);
        m.record_ingest_rejected();
        m.record_parse_error();
        m.record_query_cache_hit();
        m.record_query_cache_hit();
        m.record_query_cache_miss();
        assert_eq!(m.units_ingested(), 2);
        assert_eq!(m.query_cache_hits(), 2);
        assert_eq!(m.query_cache_misses(), 1);
        let text = m.render_prometheus(&[(
            "car_ingest_queue_depth",
            "Units waiting in the ingest queue.",
            3.0,
        )]);
        assert!(text.contains("car_units_ingested_total 2\n"));
        assert!(text.contains("car_transactions_ingested_total 200\n"));
        assert!(text.contains("car_ingest_rejected_total 1\n"));
        assert!(text.contains("car_http_parse_errors_total 1\n"));
        assert!(text.contains("car_query_cache_hits 2\n"));
        assert!(text.contains("car_query_cache_misses 1\n"));
        assert!(text.contains("# TYPE car_query_cache_hits counter\n"));
        assert!(text.contains("# TYPE car_ingest_queue_depth gauge\n"));
        assert!(text.contains("car_ingest_queue_depth 3\n"));
    }
}
