//! A hand-rolled HTTP/1.1 server-side codec.
//!
//! The daemon speaks plain HTTP over [`std::net::TcpStream`] with no
//! external dependencies, so the wire protocol lives here: a strict
//! request parser with hard limits (header block size, body size,
//! nesting comes from [`crate::json`]) that turns every malformed input
//! into a clean 4xx instead of a panic, and a small response writer.
//!
//! Supported surface: methods as tokens, origin-form targets with query
//! strings, `Content-Length` bodies, keep-alive (HTTP/1.1 default) and
//! `Connection: close`. `Transfer-Encoding` is rejected with 501 —
//! clients of this daemon never need chunked uploads.

use std::fmt;
use std::io::{self, BufRead, Write};
use std::time::{Duration, Instant};

/// Hard limit on the request line + headers block, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default hard limit on a request body, in bytes.
pub const DEFAULT_MAX_BODY_BYTES: usize = 1024 * 1024;

/// Hard limits governing one request read.
///
/// The head deadline is the slow-loris defense: it starts at the first
/// byte of a request (an *idle* keep-alive connection is governed by
/// the socket read timeout instead, so patient-but-silent clients are
/// fine) and bounds how long a client may dribble out the head block.
#[derive(Clone, Copy, Debug)]
pub struct RequestLimits {
    /// Hard limit on the request line + headers block, in bytes.
    pub max_head_bytes: usize,
    /// Hard limit on the declared request body, in bytes.
    pub max_body_bytes: usize,
    /// Budget for the head block, measured from its first byte.
    /// `None` disables the deadline.
    pub header_timeout: Option<Duration>,
}

impl Default for RequestLimits {
    fn default() -> RequestLimits {
        RequestLimits {
            max_head_bytes: MAX_HEAD_BYTES,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            header_timeout: None,
        }
    }
}

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method, upper-case token (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path component, without the query string.
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be parsed, mapped to an HTTP status.
#[derive(Debug)]
pub enum ParseError {
    /// Malformed request line, header, or encoding.
    Bad(&'static str),
    /// The head block exceeded the configured byte limit.
    HeadTooLarge,
    /// The head block arrived too slowly (slow-loris): its first byte
    /// was read, but the blank line did not follow within the
    /// configured [`RequestLimits::header_timeout`].
    HeadTimeout,
    /// The declared body exceeded the configured limit.
    BodyTooLarge {
        /// The limit in force.
        limit: usize,
    },
    /// `Transfer-Encoding` requests an unimplemented framing.
    UnsupportedTransferEncoding,
    /// The HTTP version is not 1.x.
    UnsupportedVersion,
    /// The socket timed out mid-request.
    Timeout,
    /// The connection dropped mid-request or another I/O failure.
    Io(io::Error),
    /// Clean end of stream before any request byte (keep-alive close).
    ConnectionClosed,
}

impl ParseError {
    /// The HTTP status code and reason this error should produce.
    /// [`ParseError::ConnectionClosed`] never produces a response.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            ParseError::Bad(_) => (400, "Bad Request"),
            ParseError::HeadTooLarge => (431, "Request Header Fields Too Large"),
            ParseError::BodyTooLarge { .. } => (413, "Payload Too Large"),
            ParseError::UnsupportedTransferEncoding => (501, "Not Implemented"),
            ParseError::UnsupportedVersion => (505, "HTTP Version Not Supported"),
            ParseError::HeadTimeout => (408, "Request Timeout"),
            ParseError::Timeout => (408, "Request Timeout"),
            ParseError::Io(_) | ParseError::ConnectionClosed => (400, "Bad Request"),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Bad(what) => write!(f, "malformed request: {what}"),
            ParseError::HeadTooLarge => {
                write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            ParseError::BodyTooLarge { limit } => {
                write!(f, "request body exceeds {limit} bytes")
            }
            ParseError::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding is not supported; use content-length")
            }
            ParseError::UnsupportedVersion => write!(f, "only HTTP/1.x is supported"),
            ParseError::HeadTimeout => {
                write!(f, "request head arrived too slowly; closing")
            }
            ParseError::Timeout => write!(f, "timed out reading request"),
            ParseError::Io(e) => write!(f, "i/o error reading request: {e}"),
            ParseError::ConnectionClosed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ParseError::Timeout,
            io::ErrorKind::UnexpectedEof => {
                ParseError::Bad("connection closed mid-request")
            }
            _ => ParseError::Io(e),
        }
    }
}

/// Reads one request from `reader`.
///
/// Returns [`ParseError::ConnectionClosed`] when the stream ends cleanly
/// before the first byte — the normal end of a keep-alive connection.
///
/// # Errors
///
/// Any malformed, oversized, or timed-out input yields a [`ParseError`]
/// that maps to a 4xx/5xx via [`ParseError::status`].
pub fn read_request<R: BufRead>(
    reader: &mut R,
    max_body_bytes: usize,
) -> Result<Request, ParseError> {
    read_request_limited(
        reader,
        &RequestLimits { max_body_bytes, ..RequestLimits::default() },
    )
}

/// [`read_request`] with the full set of [`RequestLimits`], including
/// the head deadline.
///
/// # Errors
///
/// As [`read_request`], plus [`ParseError::HeadTimeout`] when the head
/// block dribbles past its deadline.
pub fn read_request_limited<R: BufRead>(
    reader: &mut R,
    limits: &RequestLimits,
) -> Result<Request, ParseError> {
    let head = read_head(reader, limits)?;
    let max_body_bytes = limits.max_body_bytes;
    let mut lines =
        head.split(|&b| b == b'\n').map(|l| l.strip_suffix(b"\r").unwrap_or(l));

    let request_line = lines.next().ok_or(ParseError::Bad("empty request"))?;
    let request_line = std::str::from_utf8(request_line)
        .map_err(|_| ParseError::Bad("request line is not UTF-8"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("");
    let target = parts.next().ok_or(ParseError::Bad("missing request target"))?;
    let version = parts.next().ok_or(ParseError::Bad("missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(ParseError::Bad("request line has too many fields"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase() || b == b'-') {
        return Err(ParseError::Bad("invalid method token"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::UnsupportedVersion);
    }
    if !target.starts_with('/') {
        return Err(ParseError::Bad("request target must be origin-form"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let line = std::str::from_utf8(line)
            .map_err(|_| ParseError::Bad("header is not UTF-8"))?;
        let (name, value) =
            line.split_once(':').ok_or(ParseError::Bad("header missing `:`"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::Bad("invalid header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(ParseError::UnsupportedTransferEncoding);
    }
    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => {
            v.parse::<usize>().map_err(|_| ParseError::Bad("invalid content-length"))?
        }
    };
    if content_length > max_body_bytes {
        return Err(ParseError::BodyTooLarge { limit: max_body_bytes });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path).ok_or(ParseError::Bad("invalid path escape"))?;
    let query = match raw_query {
        None => Vec::new(),
        Some(q) => parse_query(q).ok_or(ParseError::Bad("invalid query escape"))?,
    };

    Ok(Request { method: method.to_string(), path, query, headers, body })
}

/// Reads up to and including the blank line ending the head block. The
/// head deadline clock starts once the first head byte has been read —
/// the wait *for* that byte is the idle keep-alive wait, governed by
/// the socket read timeout.
fn read_head<R: BufRead>(
    reader: &mut R,
    limits: &RequestLimits,
) -> Result<Vec<u8>, ParseError> {
    let mut head = Vec::new();
    let mut started_at: Option<Instant> = None;
    loop {
        let expired = |started_at: Option<Instant>| {
            limits.header_timeout.is_some_and(|budget| {
                started_at.is_some_and(|start| start.elapsed() >= budget)
            })
        };
        if expired(started_at) {
            return Err(ParseError::HeadTimeout);
        }
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            // A socket timeout while mid-head and past the deadline is
            // the slow-loris cut-off, not an idle keep-alive timeout.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) && expired(started_at) =>
            {
                return Err(ParseError::HeadTimeout);
            }
            Err(e) => return Err(e.into()),
        };
        if buf.is_empty() {
            return if head.is_empty() {
                Err(ParseError::ConnectionClosed)
            } else {
                Err(ParseError::Bad("connection closed mid-head"))
            };
        }
        if started_at.is_none() && limits.header_timeout.is_some() {
            started_at = Some(Instant::now());
        }
        // Scan the new bytes for the head terminator, tracking overlap
        // with bytes already consumed.
        let mut consumed = 0;
        let mut done = false;
        for &b in buf {
            consumed += 1;
            head.push(b);
            if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
                done = true;
                break;
            }
            if head.len() > limits.max_head_bytes {
                reader.consume(consumed);
                return Err(ParseError::HeadTooLarge);
            }
        }
        reader.consume(consumed);
        if done {
            return Ok(head);
        }
    }
}

fn parse_query(raw: &str) -> Option<Vec<(String, String)>> {
    let mut out = Vec::new();
    for pair in raw.split('&') {
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.push((percent_decode(k)?, percent_decode(v)?));
    }
    Some(out)
}

/// Decodes `%XX` escapes and `+` (as space). Returns `None` on invalid
/// escapes or non-UTF-8 results.
fn percent_decode(raw: &str) -> Option<String> {
    if !raw.contains('%') && !raw.contains('+') {
        return Some(raw.to_string());
    }
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        match b {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hex = std::str::from_utf8(hex).ok()?;
                out.push(u8::from_str_radix(hex, 16).ok()?);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// An HTTP response ready to be written.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Whether to close the connection after this response.
    pub close: bool,
    /// Additional response headers beyond `content-type` and
    /// `content-length` (e.g. `X-Car-Epoch`), written verbatim in order.
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: &crate::json::Json) -> Response {
        Response {
            status,
            reason: reason_for(status),
            content_type: "application/json",
            body: body.render().into_bytes(),
            close: false,
            extra_headers: Vec::new(),
        }
    }

    /// A JSON response from pre-rendered body bytes — the cached-view
    /// path, where the body was rendered once and is served repeatedly.
    pub fn json_bytes(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            reason: reason_for(status),
            content_type: "application/json",
            body,
            close: false,
            extra_headers: Vec::new(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            reason: reason_for(status),
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into().into_bytes(),
            close: false,
            extra_headers: Vec::new(),
        }
    }

    /// A JSON error envelope `{"error": message}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            &crate::json::object([("error", crate::json::Json::from(message))]),
        )
    }

    /// Marks the connection for closing after this response.
    pub fn with_close(mut self) -> Response {
        self.close = true;
        self
    }

    /// Adds a custom response header. The name must not collide with the
    /// headers the writer emits itself (`content-type`, `content-length`,
    /// `connection`); values must be header-safe (no CR/LF).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name.to_string(), value.into()));
        self
    }

    /// Writes the response (status line, headers, body) to `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying stream.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
            self.status,
            self.reason,
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.extra_headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        if self.close {
            write!(w, "connection: close\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Standard reason phrase for the status codes the daemon emits.
pub fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &[u8]) -> Result<Request, ParseError> {
        read_request(&mut Cursor::new(raw.to_vec()), DEFAULT_MAX_BODY_BYTES)
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse(
            b"GET /v1/rules?length=7&min_confidence=0.8&flag HTTP/1.1\r\n\
              host: localhost\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/rules");
        assert_eq!(req.query_param("length"), Some("7"));
        assert_eq!(req.query_param("min_confidence"), Some("0.8"));
        assert_eq!(req.query_param("flag"), Some(""));
        assert_eq!(req.header("host"), Some("localhost"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse(b"POST /v1/units HTTP/1.1\r\ncontent-length: 9\r\n\r\n{\"a\": [1]}");
        // content-length 9 < actual 10: body is truncated to declaration.
        let req = req.unwrap();
        assert_eq!(req.body, b"{\"a\": [1]".to_vec());
    }

    #[test]
    fn percent_and_plus_decoding() {
        let req = parse(b"GET /v1/rules?name=a%20b+c&x=%2F HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.query_param("name"), Some("a b c"));
        assert_eq!(req.query_param("x"), Some("/"));
    }

    #[test]
    fn bad_method_is_400() {
        for raw in [
            b"get /v1/health HTTP/1.1\r\n\r\n".as_slice(),
            b"G=T /v1/health HTTP/1.1\r\n\r\n",
            b" /v1/health HTTP/1.1\r\n\r\n",
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err.status().0, 400, "{err}");
        }
    }

    #[test]
    fn truncated_head_is_400_not_panic() {
        for raw in [
            b"GET /v1/health HTTP/1.1\r\nhost: loc".as_slice(),
            b"GET /v1/health".as_slice(),
            b"GET\r\n\r\n".as_slice(),
            b"\r\n\r\n".as_slice(),
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err.status().0, 400, "{err}");
        }
    }

    #[test]
    fn clean_eof_is_connection_closed() {
        assert!(matches!(parse(b"").unwrap_err(), ParseError::ConnectionClosed));
    }

    #[test]
    fn oversized_body_is_413_without_reading_it() {
        let raw = b"POST /v1/units HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n";
        let err = read_request(&mut Cursor::new(raw.to_vec()), 1024).unwrap_err();
        assert_eq!(err.status().0, 413);
    }

    #[test]
    fn truncated_body_is_400() {
        let raw = b"POST /v1/units HTTP/1.1\r\ncontent-length: 50\r\n\r\nshort";
        let err = parse(raw).unwrap_err();
        assert_eq!(err.status().0, 400);
    }

    #[test]
    fn oversized_head_is_431() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat(b'a').take(MAX_HEAD_BYTES + 10));
        let err = parse(&raw).unwrap_err();
        assert_eq!(err.status().0, 431);
    }

    #[test]
    fn transfer_encoding_is_501() {
        let raw = b"POST /v1/units HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
        let err = parse(raw).unwrap_err();
        assert_eq!(err.status().0, 501);
    }

    #[test]
    fn bad_version_is_505() {
        let err = parse(b"GET / HTTP/2\r\n\r\n").unwrap_err();
        assert_eq!(err.status().0, 505);
    }

    #[test]
    fn bad_content_length_is_400() {
        let raw = b"POST / HTTP/1.1\r\ncontent-length: banana\r\n\r\n";
        assert_eq!(parse(raw).unwrap_err().status().0, 400);
    }

    #[test]
    fn header_without_colon_is_400() {
        let raw = b"GET / HTTP/1.1\r\nbroken header line\r\n\r\n";
        assert_eq!(parse(raw).unwrap_err().status().0, 400);
    }

    #[test]
    fn keep_alive_and_close_detection() {
        let req = parse(b"GET / HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
        assert!(req.wants_close());
        let req = parse(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(!req.wants_close());
    }

    #[test]
    fn two_requests_on_one_connection() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut cur = Cursor::new(raw.to_vec());
        let a = read_request(&mut cur, 1024).unwrap();
        let b = read_request(&mut cur, 1024).unwrap();
        assert_eq!(a.path, "/a");
        assert_eq!(b.path, "/b");
        assert!(matches!(
            read_request(&mut cur, 1024).unwrap_err(),
            ParseError::ConnectionClosed
        ));
    }

    #[test]
    fn lf_only_head_is_accepted() {
        let req = parse(b"GET /x HTTP/1.1\nhost: h\n\n").unwrap();
        assert_eq!(req.path, "/x");
        assert_eq!(req.header("host"), Some("h"));
    }

    /// A reader that hands out one byte per `fill_buf` — the shape of a
    /// slow-loris client as seen through `BufRead`.
    struct Dribble {
        data: Vec<u8>,
        pos: usize,
    }

    impl io::Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let chunk = self.fill_buf()?;
            let n = chunk.len().min(buf.len());
            if let (Some(dst), Some(src)) = (buf.get_mut(..n), chunk.get(..n)) {
                dst.copy_from_slice(src);
            }
            self.consume(n);
            Ok(n)
        }
    }

    impl BufRead for Dribble {
        fn fill_buf(&mut self) -> io::Result<&[u8]> {
            let end = (self.pos + 1).min(self.data.len());
            Ok(self.data.get(self.pos..end).unwrap_or(&[]))
        }

        fn consume(&mut self, amt: usize) {
            self.pos += amt;
        }
    }

    #[test]
    fn dribbled_head_times_out_as_408() {
        let raw = b"GET /v1/health HTTP/1.1\r\n\r\n";
        let limits = RequestLimits {
            header_timeout: Some(Duration::ZERO),
            ..RequestLimits::default()
        };
        let mut slow = Dribble { data: raw.to_vec(), pos: 0 };
        let err = read_request_limited(&mut slow, &limits).unwrap_err();
        assert!(matches!(err, ParseError::HeadTimeout), "{err}");
        assert_eq!(err.status().0, 408);
    }

    #[test]
    fn dribbled_head_parses_without_a_deadline() {
        let raw = b"GET /v1/health HTTP/1.1\r\nhost: h\r\n\r\n";
        let mut slow = Dribble { data: raw.to_vec(), pos: 0 };
        let req = read_request_limited(&mut slow, &RequestLimits::default()).unwrap();
        assert_eq!(req.path, "/v1/health");
        assert_eq!(req.header("host"), Some("h"));
    }

    #[test]
    fn generous_head_deadline_does_not_fire() {
        let raw = b"GET /v1/health HTTP/1.1\r\n\r\n";
        let limits = RequestLimits {
            header_timeout: Some(Duration::from_secs(30)),
            ..RequestLimits::default()
        };
        let mut slow = Dribble { data: raw.to_vec(), pos: 0 };
        let req = read_request_limited(&mut slow, &limits).unwrap();
        assert_eq!(req.path, "/v1/health");
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::text(200, "ok").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\nok"));
        let mut out = Vec::new();
        Response::error(503, "queue full").with_close().write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"queue full\"}"));
    }
}
