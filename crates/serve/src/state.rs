//! Shared daemon state: the sliding-window miner, the bounded ingest
//! queue, and the ingest worker that connects them.
//!
//! Ingestion is asynchronous: `POST /v1/units` enqueues the unit and
//! returns `202 Accepted` (or `503` when the queue is full — explicit
//! backpressure instead of unbounded buffering), and a single dedicated
//! ingest thread applies queued units to the miner in arrival order.
//! Mining a unit is the expensive step (Apriori + rule generation), so
//! keeping it off the request path keeps ingest latency flat; a single
//! applier also means units are numbered and applied in exactly the
//! order they were accepted.
//!
//! Queries take the miner read lock; the applier takes the write lock
//! per unit. Clients that need read-your-writes (tests, benchmarks) pass
//! `?wait=true` and block until their unit's sequence number is applied.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use car_core::window::SlidingWindowMiner;
use car_core::{ConfigError, MiningConfig};
use car_itemset::ItemSet;

use crate::metrics::Metrics;
use crate::sync::{LockExt, RwLockExt};

/// Why a unit could not be enqueued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnqueueError {
    /// The bounded queue is at capacity — retry later.
    Full,
    /// The daemon is shutting down and no longer accepts units.
    ShuttingDown,
}

struct QueueInner {
    units: VecDeque<Vec<ItemSet>>,
    closed: bool,
}

/// A bounded MPSC queue of pending time units.
pub struct IngestQueue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    capacity: usize,
    /// Units ever accepted (the enqueue ticket counter).
    enqueued: AtomicU64,
}

impl IngestQueue {
    fn new(capacity: usize) -> IngestQueue {
        IngestQueue {
            inner: Mutex::new(QueueInner { units: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
            enqueued: AtomicU64::new(0),
        }
    }

    /// Enqueues a unit, returning its 1-based sequence number.
    ///
    /// # Errors
    ///
    /// [`EnqueueError::Full`] at capacity, [`EnqueueError::ShuttingDown`]
    /// after close.
    pub fn enqueue(&self, unit: Vec<ItemSet>) -> Result<u64, EnqueueError> {
        let mut inner = self.inner.lock_or_recover();
        if inner.closed {
            return Err(EnqueueError::ShuttingDown);
        }
        if inner.units.len() >= self.capacity {
            return Err(EnqueueError::Full);
        }
        inner.units.push_back(unit);
        let seq = self.enqueued.fetch_add(1, Ordering::Relaxed) + 1;
        self.not_empty.notify_one();
        Ok(seq)
    }

    /// Units currently waiting.
    pub fn depth(&self) -> usize {
        self.inner.lock_or_recover().units.len()
    }

    /// Stops accepting new units; the applier drains what remains.
    fn close(&self) {
        let mut inner = self.inner.lock_or_recover();
        inner.closed = true;
        self.not_empty.notify_all();
    }

    /// Blocks until a unit is available or the queue is closed *and*
    /// empty (drain semantics).
    fn dequeue(&self) -> Option<Vec<ItemSet>> {
        let mut inner = self.inner.lock_or_recover();
        loop {
            if let Some(unit) = inner.units.pop_front() {
                return Some(unit);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Everything the request handlers share.
pub struct AppState {
    /// The mining configuration the miner was built with.
    pub config: MiningConfig,
    /// The sliding-window miner; readers query, the applier writes.
    pub miner: RwLock<SlidingWindowMiner>,
    /// Pending units awaiting application.
    pub queue: IngestQueue,
    /// Daemon counters.
    pub metrics: Metrics,
    /// Set once shutdown begins; checked by the accept loop and
    /// keep-alive connections.
    pub shutdown: AtomicBool,
    /// Highest applied unit sequence number, with its condvar for
    /// `?wait=true` ingests.
    applied: Mutex<u64>,
    applied_cv: Condvar,
}

impl AppState {
    /// Builds state for a daemon retaining `window` units and queueing
    /// at most `queue_capacity` pending units.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] when the window cannot satisfy the
    /// configuration (e.g. shorter than `l_max`).
    pub fn new(
        config: MiningConfig,
        window: usize,
        queue_capacity: usize,
    ) -> Result<Arc<AppState>, ConfigError> {
        let miner = SlidingWindowMiner::new(config, window)?;
        Ok(Arc::new(AppState {
            config,
            miner: RwLock::new(miner),
            queue: IngestQueue::new(queue_capacity),
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
            applied: Mutex::new(0),
            applied_cv: Condvar::new(),
        }))
    }

    /// Begins shutdown: stop accepting units and wake all waiters.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until unit `seq` has been applied to the miner, or the
    /// deadline passes. Returns whether the unit was applied.
    pub fn wait_applied(&self, seq: u64, timeout: Duration) -> bool {
        let guard = self.applied.lock_or_recover();
        let (guard, _timed_out) = self
            .applied_cv
            .wait_timeout_while(guard, timeout, |applied| *applied < seq)
            .unwrap_or_else(|e| e.into_inner());
        *guard >= seq
    }

    fn mark_applied(&self, seq: u64) {
        let mut guard = self.applied.lock_or_recover();
        *guard = seq;
        self.applied_cv.notify_all();
    }
}

/// Spawns the ingest applier thread. It drains the queue into the miner
/// and exits once the queue is closed and empty.
///
/// # Errors
///
/// Propagates the OS error when the thread cannot be spawned, so the
/// daemon fails to start instead of running without an applier.
pub fn spawn_ingest_worker(state: Arc<AppState>) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new().name("car-ingest".into()).spawn(move || {
        let mut seq = 0u64;
        while let Some(unit) = state.queue.dequeue() {
            seq += 1;
            {
                let mut miner = state.miner.write_or_recover();
                miner.push_unit(&unit);
            }
            state.mark_applied(seq);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_state(queue_capacity: usize) -> Arc<AppState> {
        let config = MiningConfig::builder()
            .min_support_fraction(0.5)
            .min_confidence(0.5)
            .cycle_bounds(2, 2)
            .build()
            .unwrap();
        AppState::new(config, 6, queue_capacity).unwrap()
    }

    fn unit(day: usize) -> Vec<ItemSet> {
        if day % 2 == 0 {
            vec![ItemSet::from_ids([1, 2]); 4]
        } else {
            vec![ItemSet::from_ids([9]); 4]
        }
    }

    #[test]
    fn enqueue_respects_capacity() {
        let state = test_state(2);
        assert_eq!(state.queue.enqueue(unit(0)), Ok(1));
        assert_eq!(state.queue.enqueue(unit(1)), Ok(2));
        assert_eq!(state.queue.enqueue(unit(2)), Err(EnqueueError::Full));
        assert_eq!(state.queue.depth(), 2);
    }

    #[test]
    fn closed_queue_rejects_and_drains() {
        let state = test_state(8);
        state.queue.enqueue(unit(0)).unwrap();
        state.begin_shutdown();
        assert_eq!(state.queue.enqueue(unit(1)), Err(EnqueueError::ShuttingDown));
        // The applier still drains the accepted unit.
        let worker = spawn_ingest_worker(Arc::clone(&state)).unwrap();
        worker.join().unwrap();
        assert_eq!(state.miner.read().unwrap().total_pushed(), 1);
    }

    #[test]
    fn worker_applies_in_order_and_wait_applied_sees_it() {
        let state = test_state(64);
        let worker = spawn_ingest_worker(Arc::clone(&state)).unwrap();
        let mut last = 0;
        for day in 0..10 {
            last = state.queue.enqueue(unit(day)).unwrap();
        }
        assert!(state.wait_applied(last, Duration::from_secs(5)));
        {
            let miner = state.miner.read().unwrap();
            assert_eq!(miner.total_pushed(), 10);
            assert_eq!(miner.len(), 6); // window 6
            assert_eq!(miner.evictions(), 4);
        }
        state.begin_shutdown();
        worker.join().unwrap();
    }

    #[test]
    fn wait_applied_times_out_without_worker() {
        let state = test_state(8);
        let seq = state.queue.enqueue(unit(0)).unwrap();
        assert!(!state.wait_applied(seq, Duration::from_millis(20)));
    }
}
