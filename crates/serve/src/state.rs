//! Shared daemon state: the sliding-window miner, the bounded ingest
//! queue, the optional durability layer, and the ingest worker that
//! connects them.
//!
//! Ingestion is asynchronous: `POST /v1/units` enqueues the unit and
//! returns `202 Accepted` (or `503` when the queue is full — explicit
//! backpressure instead of unbounded buffering), and a single dedicated
//! ingest thread applies queued units to the miner in arrival order.
//! Mining a unit is the expensive step (Apriori + rule generation), so
//! keeping it off the request path keeps ingest latency flat; a single
//! applier also means units are numbered and applied in exactly the
//! order they were accepted.
//!
//! With persistence enabled ([`PersistConfig`]), the accept path runs
//! under the WAL mutex: sequence assignment, the WAL append, and the
//! queue push happen atomically, so WAL order, sequence order, and apply
//! order are a single total order — a unit is never acknowledged before
//! it is in the log. The ingest worker performs boot recovery (snapshot
//! plus WAL replay) before draining the queue; until it finishes, ingest
//! and rule queries answer `503` and `/v1/health` reports `recovering`.
//!
//! Queries take the miner read lock; the applier takes the write lock
//! per unit. Clients that need read-your-writes (tests, benchmarks) pass
//! `?wait=true` and block until their unit's sequence number is applied.
//!
//! Lock order (outermost first): `persist.wal` → `queue.inner`;
//! `persist.retained` and `miner` are never held together with `wal`
//! by the same acquisition chain.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use car_core::window::SlidingWindowMiner;
use car_core::MiningConfig;
use car_itemset::ItemSet;

use crate::cache::QueryCache;
use crate::metrics::Metrics;
use crate::persist::{PersistConfig, Persistence, WalSlot};
use crate::sync::{log_warn, LockExt, RwLockExt};
use crate::ServeError;

/// The daemon's place in a sharded cluster, when launched by (or for)
/// the `car shard` router. Surfaces in `/v1/health` and as
/// `X-Car-Shard-Id` on rule responses so operators and the router can
/// tell shard workers apart; standalone daemons carry `None` and report
/// `"shard_id": null` / `"shard_count": null`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardIdentity {
    /// Zero-based index of this worker in the cluster.
    pub shard_id: u32,
    /// Total workers in the cluster.
    pub shard_count: u32,
}

/// Why a unit could not be enqueued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnqueueError {
    /// The bounded queue is at capacity — retry later.
    Full,
    /// The daemon is shutting down and no longer accepts units.
    ShuttingDown,
    /// Boot recovery (snapshot load + WAL replay) is still running.
    Recovering,
    /// The durability layer failed (WAL append/fsync); the daemon will
    /// not acknowledge units it cannot make durable.
    Persistence,
}

struct QueueInner {
    units: VecDeque<(u64, Vec<ItemSet>)>,
    closed: bool,
}

/// A bounded MPSC queue of pending, sequence-numbered time units.
pub struct IngestQueue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    capacity: usize,
    /// Units ever accepted (the enqueue ticket counter, used when no
    /// WAL is assigning sequence numbers).
    enqueued: AtomicU64,
}

impl IngestQueue {
    fn new(capacity: usize) -> IngestQueue {
        IngestQueue {
            inner: Mutex::new(QueueInner { units: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
            enqueued: AtomicU64::new(0),
        }
    }

    /// Enqueues a unit, returning its 1-based sequence number.
    ///
    /// # Errors
    ///
    /// [`EnqueueError::Full`] at capacity, [`EnqueueError::ShuttingDown`]
    /// after close.
    pub fn enqueue(&self, unit: Vec<ItemSet>) -> Result<u64, EnqueueError> {
        let mut inner = self.inner.lock_or_recover();
        if inner.closed {
            return Err(EnqueueError::ShuttingDown);
        }
        if inner.units.len() >= self.capacity {
            return Err(EnqueueError::Full);
        }
        let seq = self.enqueued.fetch_add(1, Ordering::Relaxed) + 1;
        inner.units.push_back((seq, unit));
        self.not_empty.notify_one();
        Ok(seq)
    }

    /// Enqueues a batch under one lock acquisition, reporting a result
    /// per unit (later units see [`EnqueueError::Full`] once capacity is
    /// reached; earlier acceptances stand).
    pub fn enqueue_batch(
        &self,
        units: Vec<Vec<ItemSet>>,
    ) -> Vec<Result<u64, EnqueueError>> {
        let mut inner = self.inner.lock_or_recover();
        let mut results = Vec::with_capacity(units.len());
        for unit in units {
            if inner.closed {
                results.push(Err(EnqueueError::ShuttingDown));
            } else if inner.units.len() >= self.capacity {
                results.push(Err(EnqueueError::Full));
            } else {
                let seq = self.enqueued.fetch_add(1, Ordering::Relaxed) + 1;
                inner.units.push_back((seq, unit));
                self.not_empty.notify_one();
                results.push(Ok(seq));
            }
        }
        results
    }

    /// Free slots, or `None` once the queue is closed. Only meaningful
    /// while the caller holds the WAL mutex (nothing else can push).
    pub(crate) fn room(&self) -> Option<usize> {
        let inner = self.inner.lock_or_recover();
        if inner.closed {
            None
        } else {
            Some(self.capacity.saturating_sub(inner.units.len()))
        }
    }

    /// Pushes WAL-assigned units `first_seq..first_seq+len`. The caller
    /// holds the WAL mutex and has checked [`room`](IngestQueue::room).
    ///
    /// # Errors
    ///
    /// [`EnqueueError::ShuttingDown`] when the queue closed since the
    /// room check; the units are already durable in the WAL and will be
    /// recovered (unacknowledged) on the next boot.
    pub(crate) fn push_with_seqs(
        &self,
        first_seq: u64,
        units: Vec<Vec<ItemSet>>,
    ) -> Result<(), EnqueueError> {
        let mut inner = self.inner.lock_or_recover();
        if inner.closed {
            return Err(EnqueueError::ShuttingDown);
        }
        for (i, unit) in units.into_iter().enumerate() {
            inner.units.push_back((first_seq.saturating_add(i as u64), unit));
        }
        self.not_empty.notify_one();
        Ok(())
    }

    /// Units currently waiting.
    pub fn depth(&self) -> usize {
        self.inner.lock_or_recover().units.len()
    }

    /// Stops accepting new units; the applier drains what remains.
    fn close(&self) {
        let mut inner = self.inner.lock_or_recover();
        inner.closed = true;
        self.not_empty.notify_all();
    }

    /// Blocks until a unit is available or the queue is closed *and*
    /// empty (drain semantics).
    fn dequeue(&self) -> Option<(u64, Vec<ItemSet>)> {
        let mut inner = self.inner.lock_or_recover();
        loop {
            if let Some(entry) = inner.units.pop_front() {
                return Some(entry);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Where boot recovery stands. `None` means the daemon runs without
/// persistence and never recovers anything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryStatus {
    /// No persistence configured.
    None,
    /// Snapshot load + WAL replay in progress; not ready to serve.
    Recovering,
    /// Recovery finished (possibly trivially).
    Complete,
}

/// Lock-free recovery progress, readable by `/v1/health` at any time.
#[derive(Default)]
pub struct RecoveryInfo {
    /// 0 = none, 1 = recovering, 2 = complete.
    status: AtomicU8,
    snapshot_units: AtomicU64,
    replayed_units: AtomicU64,
}

impl RecoveryInfo {
    /// Current status.
    pub fn status(&self) -> RecoveryStatus {
        match self.status.load(Ordering::SeqCst) {
            1 => RecoveryStatus::Recovering,
            2 => RecoveryStatus::Complete,
            _ => RecoveryStatus::None,
        }
    }

    /// Whether recovery is still in progress (serve `503`s meanwhile).
    pub fn is_recovering(&self) -> bool {
        self.status() == RecoveryStatus::Recovering
    }

    /// Units restored from the snapshot.
    pub fn snapshot_units(&self) -> u64 {
        self.snapshot_units.load(Ordering::Relaxed)
    }

    /// Units replayed from the WAL tail.
    pub fn replayed_units(&self) -> u64 {
        self.replayed_units.load(Ordering::Relaxed)
    }

    fn finish(&self, snapshot_units: u64, replayed_units: u64) {
        self.snapshot_units.store(snapshot_units, Ordering::Relaxed);
        self.replayed_units.store(replayed_units, Ordering::Relaxed);
        self.status.store(2, Ordering::SeqCst);
    }
}

/// Everything the request handlers share.
pub struct AppState {
    /// The mining configuration the miner was built with.
    pub config: MiningConfig,
    /// The sliding-window miner; readers query, the applier writes.
    pub miner: RwLock<SlidingWindowMiner>,
    /// Pending units awaiting application.
    pub queue: IngestQueue,
    /// Daemon counters.
    pub metrics: Metrics,
    /// Rendered `GET /v1/rules` bodies for the current window epoch;
    /// advanced (cleared) by the applier after every apply.
    pub query_cache: QueryCache,
    /// The durability layer, when a data directory was configured.
    pub persist: Option<Persistence>,
    /// Cluster identity when running as a shard worker; `None`
    /// standalone.
    pub shard: Option<ShardIdentity>,
    /// Boot-recovery progress.
    pub recovery: RecoveryInfo,
    /// Set once shutdown begins; checked by the accept loop and
    /// keep-alive connections.
    pub shutdown: AtomicBool,
    /// Highest applied unit sequence number, with its condvar for
    /// `?wait=true` ingests.
    applied: Mutex<u64>,
    applied_cv: Condvar,
}

impl AppState {
    /// Builds state for a daemon retaining `window` units, queueing at
    /// most `queue_capacity` pending units, and — when `persist` is
    /// given — journaling every accepted unit to its data directory.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] when the window cannot satisfy the
    /// configuration (e.g. shorter than `l_max`); [`ServeError::Io`]
    /// when the data directory cannot be created.
    pub fn new(
        config: MiningConfig,
        window: usize,
        queue_capacity: usize,
        persist: Option<PersistConfig>,
    ) -> Result<Arc<AppState>, ServeError> {
        Self::new_with_shard(config, window, queue_capacity, persist, None)
    }

    /// [`AppState::new`] with a cluster identity attached; used by the
    /// `car serve --shard-id/--shard-count` worker mode.
    ///
    /// # Errors
    ///
    /// Same as [`AppState::new`].
    pub fn new_with_shard(
        config: MiningConfig,
        window: usize,
        queue_capacity: usize,
        persist: Option<PersistConfig>,
        shard: Option<ShardIdentity>,
    ) -> Result<Arc<AppState>, ServeError> {
        let miner = SlidingWindowMiner::new(config, window)?;
        let persist = match persist {
            Some(cfg) => Some(Persistence::new(cfg, window)?),
            None => None,
        };
        let recovery = RecoveryInfo::default();
        if persist.is_some() {
            // Recovering from construction until the worker finishes, so
            // health never reports ready with a half-replayed window.
            recovery.status.store(1, Ordering::SeqCst);
        }
        Ok(Arc::new(AppState {
            config,
            miner: RwLock::new(miner),
            queue: IngestQueue::new(queue_capacity),
            metrics: Metrics::new(),
            query_cache: QueryCache::new(),
            persist,
            shard,
            recovery,
            shutdown: AtomicBool::new(false),
            applied: Mutex::new(0),
            applied_cv: Condvar::new(),
        }))
    }

    /// Accepts a batch of units, returning one result per unit in input
    /// order. With persistence, accepted units are WAL-appended (and
    /// fsynced per policy) before this returns — acknowledged means
    /// durable. A prefix of the batch may be accepted and the rest
    /// rejected `Full` when the queue lacks room.
    pub fn ingest_batch(
        &self,
        units: Vec<Vec<ItemSet>>,
    ) -> Vec<Result<u64, EnqueueError>> {
        let n = units.len();
        if self.is_shutting_down() {
            return vec![Err(EnqueueError::ShuttingDown); n];
        }
        let Some(persist) = &self.persist else {
            return self.queue.enqueue_batch(units);
        };
        let mut slot = persist.wal.lock_or_recover();
        let (results, now_failed) = match &mut *slot {
            WalSlot::Pending => (vec![Err(EnqueueError::Recovering); n], false),
            WalSlot::Failed => (vec![Err(EnqueueError::Persistence); n], false),
            WalSlot::Open(wal) => {
                let Some(room) = self.queue.room() else {
                    return vec![Err(EnqueueError::ShuttingDown); n];
                };
                let k = room.min(n);
                let mut accepted = units;
                accepted.truncate(k);
                let mut results: Vec<Result<u64, EnqueueError>> = Vec::with_capacity(n);
                if k > 0 {
                    match wal.append_batch(&accepted, &self.metrics) {
                        Ok(first) => match self.queue.push_with_seqs(first, accepted) {
                            Ok(()) => {
                                for i in 0..k {
                                    results.push(Ok(first.saturating_add(i as u64)));
                                }
                            }
                            Err(e) => {
                                // Durable but unacknowledged: recovered
                                // next boot, rejected now.
                                for _ in 0..k {
                                    results.push(Err(e));
                                }
                            }
                        },
                        Err(e) => {
                            log_warn(&format!("WAL append failed: {e}"));
                            self.metrics.record_wal_error();
                            for _ in 0..k {
                                results.push(Err(EnqueueError::Persistence));
                            }
                        }
                    }
                }
                while results.len() < n {
                    results.push(Err(EnqueueError::Full));
                }
                (results, wal.is_failed())
            }
        };
        if now_failed {
            *slot = WalSlot::Failed;
        }
        results
    }

    /// Accepts one unit — [`ingest_batch`](AppState::ingest_batch) with
    /// a batch of one.
    ///
    /// # Errors
    ///
    /// See [`EnqueueError`].
    pub fn ingest_unit(&self, unit: Vec<ItemSet>) -> Result<u64, EnqueueError> {
        self.ingest_batch(vec![unit]).pop().unwrap_or(Err(EnqueueError::ShuttingDown))
    }

    /// Begins shutdown: stop accepting units and wake all waiters.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until unit `seq` has been applied to the miner, or the
    /// deadline passes. Returns whether the unit was applied.
    pub fn wait_applied(&self, seq: u64, timeout: Duration) -> bool {
        let guard = self.applied.lock_or_recover();
        let (guard, _timed_out) = self
            .applied_cv
            .wait_timeout_while(guard, timeout, |applied| *applied < seq)
            .unwrap_or_else(|e| e.into_inner());
        *guard >= seq
    }

    fn mark_applied(&self, seq: u64) {
        let mut guard = self.applied.lock_or_recover();
        *guard = (*guard).max(seq);
        self.applied_cv.notify_all();
    }
}

/// Spawns the ingest applier thread. With persistence it first runs
/// boot recovery (applying the recovered window to the miner), then
/// drains the queue into the miner, journalling applied units into the
/// retained ring and snapshotting on schedule; it exits — after a final
/// WAL flush and snapshot — once the queue is closed and empty.
///
/// # Errors
///
/// Propagates the OS error when the thread cannot be spawned, so the
/// daemon fails to start instead of running without an applier.
pub fn spawn_ingest_worker(state: Arc<AppState>) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new().name("car-ingest".into()).spawn(move || {
        if let Some(persist) = &state.persist {
            let recovery_span = car_obs::time_span!("recovery.boot");
            match persist.recover(&state.metrics) {
                Ok(recovery) => {
                    let total = {
                        let mut miner = state.miner.write_or_recover();
                        for unit in &recovery.units {
                            miner.push_unit(unit);
                        }
                        miner.total_pushed()
                    };
                    state.query_cache.advance(total);
                    car_obs::info!(
                        "recovery",
                        [
                            snapshot_units = recovery.snapshot_units,
                            replayed_units = recovery.replayed_units,
                            last_seq = recovery.last_seq
                        ],
                        "boot recovery complete"
                    );
                    state.recovery.finish(
                        recovery.snapshot_units as u64,
                        recovery.replayed_units as u64,
                    );
                    state.mark_applied(recovery.last_seq);
                }
                Err(e) => {
                    car_obs::error!(
                        "recovery",
                        "boot recovery failed: {e}; refusing ingest \
                         (durability cannot be promised)"
                    );
                    state.metrics.record_wal_error();
                    *persist.wal.lock_or_recover() = WalSlot::Failed;
                    state.recovery.finish(0, 0);
                }
            }
            drop(recovery_span);
        }
        while let Some((seq, unit)) = state.queue.dequeue() {
            let apply_span = car_obs::time_span!("serve.apply_unit");
            let total = {
                let mut miner = state.miner.write_or_recover();
                miner.push_unit(&unit);
                miner.total_pushed()
            };
            // Invalidate cached rule bodies *before* waking `?wait=true`
            // clients: a client that has observed its unit applied must
            // never be served a body from the previous epoch.
            state.query_cache.advance(total);
            state.mark_applied(seq);
            if let Some(persist) = &state.persist {
                persist.record_applied(seq, &unit, &state.metrics);
            }
            drop(apply_span);
            car_obs::trace!("serve", [seq = seq, txs = unit.len()], "unit applied");
        }
        if let Some(persist) = &state.persist {
            persist.flush_on_shutdown(&state.metrics);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_state(queue_capacity: usize) -> Arc<AppState> {
        let config = MiningConfig::builder()
            .min_support_fraction(0.5)
            .min_confidence(0.5)
            .cycle_bounds(2, 2)
            .build()
            .unwrap();
        AppState::new(config, 6, queue_capacity, None).unwrap()
    }

    fn persistent_state(dir: &std::path::Path, queue_capacity: usize) -> Arc<AppState> {
        let config = MiningConfig::builder()
            .min_support_fraction(0.5)
            .min_confidence(0.5)
            .cycle_bounds(2, 2)
            .build()
            .unwrap();
        AppState::new(config, 6, queue_capacity, Some(PersistConfig::new(dir))).unwrap()
    }

    fn temp_dir() -> std::path::PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "car-state-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn unit(day: usize) -> Vec<ItemSet> {
        if day % 2 == 0 {
            vec![ItemSet::from_ids([1, 2]); 4]
        } else {
            vec![ItemSet::from_ids([9]); 4]
        }
    }

    #[test]
    fn enqueue_respects_capacity() {
        let state = test_state(2);
        assert_eq!(state.queue.enqueue(unit(0)), Ok(1));
        assert_eq!(state.queue.enqueue(unit(1)), Ok(2));
        assert_eq!(state.queue.enqueue(unit(2)), Err(EnqueueError::Full));
        assert_eq!(state.queue.depth(), 2);
    }

    #[test]
    fn closed_queue_rejects_and_drains() {
        let state = test_state(8);
        state.queue.enqueue(unit(0)).unwrap();
        state.begin_shutdown();
        assert_eq!(state.queue.enqueue(unit(1)), Err(EnqueueError::ShuttingDown));
        // The applier still drains the accepted unit.
        let worker = spawn_ingest_worker(Arc::clone(&state)).unwrap();
        worker.join().unwrap();
        assert_eq!(state.miner.read().unwrap().total_pushed(), 1);
    }

    #[test]
    fn worker_applies_in_order_and_wait_applied_sees_it() {
        let state = test_state(64);
        let worker = spawn_ingest_worker(Arc::clone(&state)).unwrap();
        let mut last = 0;
        for day in 0..10 {
            last = state.queue.enqueue(unit(day)).unwrap();
        }
        assert!(state.wait_applied(last, Duration::from_secs(5)));
        {
            let miner = state.miner.read().unwrap();
            assert_eq!(miner.total_pushed(), 10);
            assert_eq!(miner.len(), 6); // window 6
            assert_eq!(miner.evictions(), 4);
        }
        state.begin_shutdown();
        worker.join().unwrap();
    }

    #[test]
    fn wait_applied_times_out_without_worker() {
        let state = test_state(8);
        let seq = state.queue.enqueue(unit(0)).unwrap();
        assert!(!state.wait_applied(seq, Duration::from_millis(20)));
    }

    #[test]
    fn batch_accepts_prefix_when_capacity_runs_out() {
        let state = test_state(2);
        let results = state.ingest_batch(vec![unit(0), unit(1), unit(2)]);
        assert_eq!(results, vec![Ok(1), Ok(2), Err(EnqueueError::Full)]);
        assert_eq!(state.queue.depth(), 2);
    }

    #[test]
    fn persistent_ingest_is_recovering_until_worker_runs() {
        let dir = temp_dir();
        let state = persistent_state(&dir, 8);
        assert!(state.recovery.is_recovering());
        assert_eq!(state.ingest_unit(unit(0)), Err(EnqueueError::Recovering));

        let worker = spawn_ingest_worker(Arc::clone(&state)).unwrap();
        // Recovery of an empty store completes quickly.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while state.recovery.is_recovering() {
            assert!(std::time::Instant::now() < deadline, "recovery stuck");
            std::thread::sleep(Duration::from_millis(5));
        }
        let seq = state.ingest_unit(unit(0)).unwrap();
        assert_eq!(seq, 1);
        assert!(state.wait_applied(seq, Duration::from_secs(5)));
        state.begin_shutdown();
        worker.join().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persistent_state_survives_restart() {
        let dir = temp_dir();
        {
            let state = persistent_state(&dir, 64);
            let worker = spawn_ingest_worker(Arc::clone(&state)).unwrap();
            let mut last = 0;
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while state.recovery.is_recovering() {
                assert!(std::time::Instant::now() < deadline, "recovery stuck");
                std::thread::sleep(Duration::from_millis(5));
            }
            for day in 0..4 {
                last = state.ingest_unit(unit(day)).unwrap();
            }
            assert!(state.wait_applied(last, Duration::from_secs(5)));
            state.begin_shutdown();
            worker.join().unwrap();
        }
        // Second life: the window comes back and sequences continue.
        let state = persistent_state(&dir, 64);
        let worker = spawn_ingest_worker(Arc::clone(&state)).unwrap();
        assert!(state.wait_applied(4, Duration::from_secs(5)));
        assert_eq!(state.recovery.snapshot_units(), 4);
        {
            let miner = state.miner.read().unwrap();
            assert_eq!(miner.total_pushed(), 4);
        }
        assert_eq!(state.ingest_unit(unit(4)), Ok(5));
        state.begin_shutdown();
        worker.join().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
