//! # car-serve — an online cyclic-rule serving daemon
//!
//! Turns the sliding-window miner
//! ([`car_core::window::SlidingWindowMiner`]) into a long-running
//! service: time units arrive over HTTP, a bounded ingest queue applies
//! them to the window off the request path, and clients query the
//! current cyclic association rules, health, and Prometheus metrics.
//!
//! Built directly on [`std::net`] with a hand-rolled HTTP/1.1 codec
//! ([`http`]) and JSON ([`json`]) — the build environment has no route
//! to a crates registry, so the daemon deliberately uses no external
//! dependencies.
//!
//! ## Architecture
//!
//! ```text
//! clients ──► accept loop ──► worker pool (N threads)
//!                                │  POST /v1/units ──► bounded queue ─┐
//!                                │  GET  /v1/rules ◄── RwLock read    │
//!                                │  GET  /v1/health, /metrics         │
//!                                ▼                                    ▼
//!                             responses            ingest thread (write lock,
//!                                                  push_unit, evictions)
//! ```
//!
//! Queries are served from cached per-unit rule sets (cycle detection at
//! query time), so responses are identical to batch-mining the retained
//! window. Shutdown — endpoint, SIGINT, or API — stops accepting,
//! drains in-flight requests and the ingest queue, and reports final
//! stats.
//!
//! ## Quick start
//!
//! ```
//! use car_serve::{serve, Client, ServerConfig};
//!
//! let config = ServerConfig { addr: "127.0.0.1:0".into(), ..Default::default() };
//! let handle = serve(config).unwrap();
//! let mut client = Client::connect(&handle.addr.to_string()).unwrap();
//! let resp = client.request("GET", "/v1/health", None).unwrap();
//! assert_eq!(resp.status, 200);
//! handle.trigger_shutdown();
//! let stats = handle.wait();
//! assert_eq!(stats.requests, 1);
//! ```

#![deny(unsafe_code)] // one documented exception: shutdown::imp (signal(2))
#![warn(missing_docs)]
// The daemon's production code must not panic on bad input; tests are
// free to unwrap. car-audit enforces the wider A1 policy, this backs it
// up at the compiler level for the most common offender.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cache;
pub mod client;
mod error;
pub mod http;
pub mod json;
pub mod metrics;
pub mod persist;
pub mod pool;
pub mod routes;
mod server;
pub mod shutdown;
pub mod state;
pub mod sync;

pub use client::{
    Client, ClientResponse, FailureClass, RetryPolicy, RetryingClient, SendError,
};
pub use error::ServeError;
pub use persist::wal::FsyncPolicy;
pub use persist::PersistConfig;
pub use server::{serve, FinalStats, ServerConfig, ServerHandle};
pub use state::ShardIdentity;
