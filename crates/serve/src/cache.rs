//! Epoch-keyed response cache for `GET /v1/rules`.
//!
//! The window only changes when the applier pushes a unit, so between
//! ingests every rules query with the same parameters produces the
//! same bytes. This cache stores fully-rendered JSON response bodies
//! keyed by [`RulesQueryKey`] and stamped with the **epoch** — the
//! miner's `total_pushed` at assembly time, a value that changes on
//! every apply and never repeats. The applier calls
//! [`QueryCache::advance`] after each apply (and *before* waking
//! `?wait=true` clients), which clears all entries; a client that has
//! observed its unit applied can therefore never be served a body from
//! the previous epoch.
//!
//! Inserts re-check the epoch under the entries lock: a slow request
//! that assembled its body at epoch `e` but lost the race with an
//! apply finds the current epoch `> e` and discards the body instead
//! of resurrecting stale state. A hit costs one mutex acquisition and
//! one body clone — the miner lock is not touched.
//!
//! Lock discipline: the internal entries mutex is a leaf lock — no
//! other lock is ever acquired while it is held, and callers hold no
//! miner/WAL/queue lock across any method of this type.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Cached entries kept per epoch; oldest is dropped beyond this. A
/// dashboard fleet polls a handful of distinct filter combinations, so
/// a small cap bounds memory without hurting the hit rate.
const MAX_ENTRIES: usize = 64;

/// The query parameters that select a distinct `GET /v1/rules` body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RulesQueryKey {
    /// Escalated confidence threshold as `f64::to_bits` (bit-exact
    /// equality; the value is validated finite in `0..=1` upstream).
    pub min_confidence_bits: Option<u64>,
    /// `length` cycle filter.
    pub length: Option<u32>,
    /// `offset` cycle filter.
    pub offset: Option<u32>,
}

/// Rendered response bodies for the current window epoch.
pub struct QueryCache {
    /// The epoch the stored entries belong to (`total_pushed` of the
    /// last advance). Entries are cleared on every advance, so all
    /// stored bodies are from this epoch by construction.
    epoch: AtomicU64,
    entries: Mutex<Vec<(RulesQueryKey, Arc<Vec<u8>>)>>,
}

impl Default for QueryCache {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryCache {
    /// Creates an empty cache at epoch 0 (before any apply).
    pub fn new() -> QueryCache {
        QueryCache { epoch: AtomicU64::new(0), entries: Mutex::new(Vec::new()) }
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Number of bodies currently cached.
    pub fn len(&self) -> usize {
        self.lock_entries().len()
    }

    /// Whether the cache currently holds no bodies.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Moves the cache to `epoch`, dropping every cached body. Called
    /// by the applier after each apply, before `?wait=true` clients
    /// are woken — the invalidation that makes a post-apply query
    /// unable to observe the previous epoch.
    pub fn advance(&self, epoch: u64) {
        let mut entries = self.lock_entries();
        self.epoch.store(epoch, Ordering::SeqCst);
        entries.clear();
    }

    /// The cached body for `key`, if one was assembled at the current
    /// epoch.
    pub fn lookup(&self, key: &RulesQueryKey) -> Option<Arc<Vec<u8>>> {
        let entries = self.lock_entries();
        entries.iter().find(|(k, _)| k == key).map(|(_, body)| Arc::clone(body))
    }

    /// Stores a body assembled at `epoch`. Discarded silently when an
    /// apply advanced the cache since assembly — inserting it would
    /// serve pre-apply state to post-apply readers.
    pub fn insert(&self, epoch: u64, key: RulesQueryKey, body: Arc<Vec<u8>>) {
        let mut entries = self.lock_entries();
        if self.epoch.load(Ordering::SeqCst) != epoch {
            return;
        }
        if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = body;
            return;
        }
        if entries.len() >= MAX_ENTRIES {
            entries.remove(0);
        }
        entries.push((key, body));
    }

    fn lock_entries(&self) -> MutexGuard<'_, Vec<(RulesQueryKey, Arc<Vec<u8>>)>> {
        // Cached bodies are pure derived data; a poisoned cache is safe
        // to keep using (worst case it re-renders).
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(conf: Option<u64>, length: Option<u32>) -> RulesQueryKey {
        RulesQueryKey { min_confidence_bits: conf, length, offset: None }
    }

    fn body(text: &str) -> Arc<Vec<u8>> {
        Arc::new(text.as_bytes().to_vec())
    }

    #[test]
    fn stores_and_serves_within_an_epoch() {
        let cache = QueryCache::new();
        cache.advance(1);
        assert!(cache.lookup(&key(None, None)).is_none());
        cache.insert(1, key(None, None), body("a"));
        cache.insert(1, key(None, Some(2)), body("b"));
        assert_eq!(cache.lookup(&key(None, None)).unwrap().as_slice(), b"a");
        assert_eq!(cache.lookup(&key(None, Some(2))).unwrap().as_slice(), b"b");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn advance_clears_every_entry() {
        let cache = QueryCache::new();
        cache.advance(1);
        cache.insert(1, key(None, None), body("stale"));
        cache.advance(2);
        assert!(cache.lookup(&key(None, None)).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.epoch(), 2);
    }

    #[test]
    fn stale_epoch_insert_is_discarded() {
        let cache = QueryCache::new();
        cache.advance(1);
        // A slow request assembled its body at epoch 1, but an apply
        // advanced the cache before the insert landed.
        cache.advance(2);
        cache.insert(1, key(None, None), body("pre-apply"));
        assert!(cache.lookup(&key(None, None)).is_none());
    }

    #[test]
    fn same_key_reinsert_replaces() {
        let cache = QueryCache::new();
        cache.advance(1);
        cache.insert(1, key(None, None), body("first"));
        cache.insert(1, key(None, None), body("second"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(&key(None, None)).unwrap().as_slice(), b"second");
    }

    #[test]
    fn capacity_drops_the_oldest_entry() {
        let cache = QueryCache::new();
        cache.advance(1);
        for i in 0..(MAX_ENTRIES as u32 + 5) {
            cache.insert(1, key(None, Some(i)), body("x"));
        }
        assert_eq!(cache.len(), MAX_ENTRIES);
        assert!(cache.lookup(&key(None, Some(0))).is_none(), "oldest evicted");
        assert!(cache.lookup(&key(None, Some(MAX_ENTRIES as u32))).is_some());
    }
}
