//! Poison-recovering lock acquisition and operational warnings.
//!
//! A mutex is poisoned when a thread panics while holding it. For this
//! daemon, the data under every lock stays consistent across a panic —
//! the miner applies a unit atomically before releasing the write lock,
//! and the queue pushes/pops whole units — so abandoning the daemon
//! over a poisoned lock would turn one crashed request into a full
//! outage. Instead, every acquisition goes through these helpers: they
//! recover the guard, log that it happened (a panic somewhere is still
//! worth an operator's attention), and carry on.
//!
//! Method-call syntax (`state.miner.read_or_recover()`) is deliberate:
//! the car-audit lock-order analysis recognises acquisitions by the
//! `receiver.method()` token shape, so the helpers stay visible to it.

use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Emits an operational warning through car-obs under the `serve`
/// target (visible with the default `CAR_LOG` filter, and captured by
/// the `/v1/debug/events` ring when the daemon is running).
pub fn log_warn(msg: &str) {
    car_obs::warn!("serve", "{msg}");
}

/// Poison-recovering [`Mutex`] acquisition.
pub trait LockExt<T> {
    /// Locks, recovering the guard if a previous holder panicked.
    fn lock_or_recover(&self) -> MutexGuard<'_, T>;
}

impl<T> LockExt<T> for Mutex<T> {
    fn lock_or_recover(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(|poisoned| {
            log_warn("recovering a poisoned mutex (a holder panicked)");
            poisoned.into_inner()
        })
    }
}

/// Poison-recovering [`RwLock`] acquisition.
pub trait RwLockExt<T> {
    /// Acquires a read guard, recovering from poison.
    fn read_or_recover(&self) -> RwLockReadGuard<'_, T>;
    /// Acquires the write guard, recovering from poison.
    fn write_or_recover(&self) -> RwLockWriteGuard<'_, T>;
}

impl<T> RwLockExt<T> for RwLock<T> {
    fn read_or_recover(&self) -> RwLockReadGuard<'_, T> {
        self.read().unwrap_or_else(|poisoned| {
            log_warn("recovering a poisoned rwlock for reading (a holder panicked)");
            poisoned.into_inner()
        })
    }

    fn write_or_recover(&self) -> RwLockWriteGuard<'_, T> {
        self.write().unwrap_or_else(|poisoned| {
            log_warn("recovering a poisoned rwlock for writing (a holder panicked)");
            poisoned.into_inner()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn recovers_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7u64));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*m.lock_or_recover(), 7);
        // And again: recovery is repeatable, not one-shot.
        *m.lock_or_recover() = 8;
        assert_eq!(*m.lock_or_recover(), 8);
    }

    #[test]
    fn recovers_poisoned_rwlock() {
        let l = Arc::new(RwLock::new(1u64));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(l.is_poisoned());
        assert_eq!(*l.read_or_recover(), 1);
        *l.write_or_recover() = 2;
        assert_eq!(*l.read_or_recover(), 2);
    }

    #[test]
    fn healthy_locks_pass_through() {
        let m = Mutex::new(1u64);
        assert_eq!(*m.lock_or_recover(), 1);
        let l = RwLock::new(2u64);
        assert_eq!(*l.read_or_recover(), 2);
    }
}
