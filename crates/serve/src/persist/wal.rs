//! The write-ahead log: length-prefixed, CRC-checksummed unit records.
//!
//! Every accepted time unit is appended here *before* its `202` is sent
//! and before the ingest worker applies it, so an acknowledged unit
//! survives any crash (subject to the configured [`FsyncPolicy`]). The
//! log is a sequence of segment files in the data directory, named
//! `wal-<first-seq>.log`; appends go to the newest segment, a snapshot
//! rotates to a fresh segment, and segments fully covered by a snapshot
//! are deleted.
//!
//! ## Record format
//!
//! ```text
//! record  = len:u32le  crc:u32le  payload
//! payload = seq:u64le  ntx:u32le  tx*
//! tx      = nitems:u32le  item:u32le*
//! ```
//!
//! `len` is the payload length and `crc` its CRC-32; a record whose
//! prefix, checksum, or payload does not hold up is treated as the end
//! of the log (see [`parse_records`]) — recovery truncates there rather
//! than trusting anything after a torn write.
//!
//! ## Failure handling
//!
//! A failed append is rolled back by truncating the segment to its last
//! good length, so the log never accumulates known-bad bytes while the
//! daemon is alive. A failed fsync (or a rollback that itself fails)
//! marks the log **failed**: the daemon stops acknowledging units (503)
//! instead of acknowledging writes it cannot promise are durable.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;

use car_itemset::ItemSet;

use crate::metrics::Metrics;
use crate::persist::crc::crc32;
use crate::persist::fault::{FaultPlan, WriteVerdict};
use crate::sync::log_warn;

/// Bytes of record framing before the payload: `len` + `crc`.
pub const RECORD_HEADER_BYTES: usize = 8;

/// Upper bound on a single record's payload — a length prefix above
/// this is treated as corruption, not an allocation request.
pub const MAX_PAYLOAD_BYTES: u32 = 64 * 1024 * 1024;

/// When to fsync the WAL after appends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append batch — acknowledged means on disk.
    Always,
    /// fsync once every `n` appended units — bounded loss window.
    EveryN(u64),
    /// Never fsync on the append path (the OS flushes eventually);
    /// rotation and shutdown still sync.
    Never,
}

impl FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => match other.strip_prefix("every=") {
                Some(n) => match n.parse::<u64>() {
                    Ok(n) if n >= 1 => Ok(FsyncPolicy::EveryN(n)),
                    _ => Err(format!("invalid fsync interval `{n}` (need ≥ 1)")),
                },
                None => Err(format!(
                    "invalid fsync policy `{other}` (need always, never, or every=N)"
                )),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every={n}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

// ---------------------------------------------------------------------
// Encoding / decoding
// ---------------------------------------------------------------------

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let slice = bytes.get(*pos..pos.checked_add(4)?)?;
    *pos += 4;
    Some(u32::from_le_bytes(slice.try_into().ok()?))
}

fn read_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let slice = bytes.get(*pos..pos.checked_add(8)?)?;
    *pos += 8;
    Some(u64::from_le_bytes(slice.try_into().ok()?))
}

/// Appends the wire encoding of one unit (`ntx` then each transaction).
pub(crate) fn encode_unit_into(unit: &[ItemSet], out: &mut Vec<u8>) {
    push_u32(out, unit.len() as u32);
    for tx in unit {
        push_u32(out, tx.len() as u32);
        for item in tx.iter() {
            push_u32(out, item.id());
        }
    }
}

/// Decodes one unit starting at `*pos`, advancing it past the unit.
pub(crate) fn decode_unit(bytes: &[u8], pos: &mut usize) -> Option<Vec<ItemSet>> {
    let ntx = read_u32(bytes, pos)? as usize;
    // Each transaction needs at least its 4-byte count; reject length
    // prefixes that could not possibly fit in the remaining bytes before
    // allocating. (`>> 2` is `/ 4` without the division lint.)
    let remaining = bytes.len().saturating_sub(*pos);
    if ntx > (remaining >> 2) {
        return None;
    }
    let mut unit = Vec::with_capacity(ntx);
    for _ in 0..ntx {
        let nitems = read_u32(bytes, pos)? as usize;
        let remaining = bytes.len().saturating_sub(*pos);
        if nitems > (remaining >> 2) {
            return None;
        }
        let mut ids = Vec::with_capacity(nitems);
        for _ in 0..nitems {
            ids.push(read_u32(bytes, pos)?);
        }
        unit.push(ItemSet::from_ids(ids));
    }
    Some(unit)
}

/// Encodes the record payload for `(seq, unit)`.
pub fn encode_payload(seq: u64, unit: &[ItemSet]) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(12 + unit.iter().map(|t| 4 + 4 * t.len()).sum::<usize>());
    push_u64(&mut out, seq);
    encode_unit_into(unit, &mut out);
    out
}

/// Decodes a record payload back into `(seq, unit)`.
///
/// Returns `None` when the payload is malformed or has trailing bytes.
pub fn decode_payload(payload: &[u8]) -> Option<(u64, Vec<ItemSet>)> {
    let mut pos = 0;
    let seq = read_u64(payload, &mut pos)?;
    let unit = decode_unit(payload, &mut pos)?;
    if pos != payload.len() {
        return None;
    }
    Some((seq, unit))
}

/// Appends the full framed record (header + payload) for `(seq, unit)`.
pub fn encode_record_into(seq: u64, unit: &[ItemSet], out: &mut Vec<u8>) {
    let payload = encode_payload(seq, unit);
    push_u32(out, payload.len() as u32);
    push_u32(out, crc32(&payload));
    out.extend_from_slice(&payload);
}

/// The result of scanning a segment's bytes.
#[derive(Debug)]
pub struct ParsedSegment {
    /// Records decoded from the valid prefix, in file order.
    pub records: Vec<(u64, Vec<ItemSet>)>,
    /// Length in bytes of the valid prefix.
    pub valid_len: u64,
    /// Why scanning stopped before the end of the buffer, if it did.
    pub corruption: Option<String>,
}

/// Scans `bytes` as a sequence of framed records, stopping at the first
/// short, torn, or checksum-failing record. Everything before the stop
/// point is returned; the caller decides whether to truncate the file.
pub fn parse_records(bytes: &[u8]) -> ParsedSegment {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut corruption = None;
    while pos < bytes.len() {
        let record_start = pos;
        let header = (read_u32(bytes, &mut pos), read_u32(bytes, &mut pos));
        let (Some(len), Some(crc)) = header else {
            corruption = Some("torn record header at end of segment".to_string());
            pos = record_start;
            break;
        };
        if len == 0 || len > MAX_PAYLOAD_BYTES {
            corruption = Some(format!("implausible record length {len}"));
            pos = record_start;
            break;
        }
        let end = pos.saturating_add(len as usize);
        let Some(payload) = bytes.get(pos..end) else {
            corruption = Some(format!(
                "torn record: header promises {len} payload bytes, {} remain",
                bytes.len().saturating_sub(pos)
            ));
            pos = record_start;
            break;
        };
        if crc32(payload) != crc {
            corruption = Some("record checksum mismatch".to_string());
            pos = record_start;
            break;
        }
        let Some((seq, unit)) = decode_payload(payload) else {
            corruption = Some("record payload failed to decode".to_string());
            pos = record_start;
            break;
        };
        if let Some(&(last_seq, _)) = records.last().map(|r: &(u64, Vec<ItemSet>)| r) {
            if seq <= last_seq {
                corruption =
                    Some(format!("sequence went backwards ({last_seq} then {seq})"));
                pos = record_start;
                break;
            }
        }
        records.push((seq, unit));
        pos = end;
    }
    ParsedSegment { records, valid_len: pos as u64, corruption }
}

// ---------------------------------------------------------------------
// Segment files
// ---------------------------------------------------------------------

/// One WAL segment file on disk.
#[derive(Clone, Debug)]
pub struct Segment {
    /// The sequence number of the first record this segment may hold.
    pub first_seq: u64,
    /// Absolute path of the segment file.
    pub path: PathBuf,
}

const SEGMENT_PREFIX: &str = "wal-";
const SEGMENT_SUFFIX: &str = ".log";

fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{first_seq:020}{SEGMENT_SUFFIX}"))
}

/// Lists the WAL segments in `dir`, sorted by first sequence number.
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn list_segments(dir: &Path) -> io::Result<Vec<Segment>> {
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name.strip_prefix(SEGMENT_PREFIX) else { continue };
        let Some(digits) = stem.strip_suffix(SEGMENT_SUFFIX) else { continue };
        let Ok(first_seq) = digits.parse::<u64>() else { continue };
        segments.push(Segment { first_seq, path: entry.path() });
    }
    segments.sort_by_key(|s| s.first_seq);
    Ok(segments)
}

/// Best-effort directory fsync so created/renamed/removed entries
/// survive a crash. Returns whether it succeeded (non-Unix platforms
/// may not support opening a directory).
fn sync_dir(dir: &Path) -> bool {
    match File::open(dir) {
        Ok(handle) => handle.sync_all().is_ok(),
        Err(_) => false,
    }
}

fn create_segment(dir: &Path, first_seq: u64) -> io::Result<(PathBuf, File)> {
    let path = segment_path(dir, first_seq);
    let file = OpenOptions::new().append(true).create(true).open(&path)?;
    if !sync_dir(dir) {
        log_warn("could not fsync the data directory after creating a WAL segment");
    }
    Ok((path, file))
}

// ---------------------------------------------------------------------
// The writer
// ---------------------------------------------------------------------

/// The append side of the log. One instance exists per daemon, behind a
/// mutex that also serialises ingest ordering (WAL order == queue order).
pub struct Wal {
    dir: PathBuf,
    policy: FsyncPolicy,
    faults: Option<FaultPlan>,
    file: File,
    live_path: PathBuf,
    live_first_seq: u64,
    live_len: u64,
    /// Older, no-longer-written segments (ascending `first_seq`).
    sealed: Vec<Segment>,
    /// The sequence number the next appended unit will receive.
    next_seq: u64,
    units_since_sync: u64,
    failed: bool,
}

impl Wal {
    /// Opens the log for appending: continues the newest segment if one
    /// exists (recovery has already truncated it to its valid prefix),
    /// otherwise creates the first segment.
    ///
    /// `next_seq` is the sequence number recovery assigned to the next
    /// unit — one past the last valid record anywhere in the log.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn open(
        dir: &Path,
        policy: FsyncPolicy,
        faults: Option<FaultPlan>,
        next_seq: u64,
    ) -> io::Result<Wal> {
        let mut sealed = list_segments(dir)?;
        let (live_path, live_first_seq, live_len, file) = match sealed.pop() {
            Some(newest) => {
                let file = OpenOptions::new().append(true).open(&newest.path)?;
                let len = file.metadata()?.len();
                (newest.path, newest.first_seq, len, file)
            }
            None => {
                let (path, file) = create_segment(dir, next_seq)?;
                (path, next_seq, 0, file)
            }
        };
        Ok(Wal {
            dir: dir.to_path_buf(),
            policy,
            faults,
            file,
            live_path,
            live_first_seq,
            live_len,
            sealed,
            next_seq,
            units_since_sync: 0,
            failed: false,
        })
    }

    /// The sequence number the next appended unit will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Whether the log has entered the failed state (fsync failure or
    /// an un-rollbackable append) and refuses further appends.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Appends `units` as consecutive records in one write, fsyncs per
    /// policy, and returns the sequence number of the first unit.
    ///
    /// On error nothing is acknowledged: the write is rolled back by
    /// truncation, or — when even that fails — the log is marked failed.
    ///
    /// # Errors
    ///
    /// Propagates write/fsync failures (including injected ones).
    pub fn append_batch(
        &mut self,
        units: &[Vec<ItemSet>],
        metrics: &Metrics,
    ) -> io::Result<u64> {
        let _span = car_obs::time_span!("wal.append");
        if self.failed {
            return Err(io::Error::other("write-ahead log is in the failed state"));
        }
        if units.is_empty() {
            return Ok(self.next_seq);
        }
        let first = self.next_seq;
        let mut buf = Vec::new();
        for (i, unit) in units.iter().enumerate() {
            encode_record_into(first + i as u64, unit, &mut buf);
        }
        let good_len = self.live_len;
        if let Err(e) = self.write_batch(&buf) {
            self.rollback_to(good_len);
            return Err(e);
        }
        if let Err(e) = self.sync_per_policy(units.len() as u64, metrics) {
            // Durability per policy could not be promised; un-acknowledge
            // the bytes and stop accepting (fsync failures rarely heal).
            self.rollback_to(good_len);
            self.failed = true;
            return Err(e);
        }
        metrics.record_wal_append(buf.len() as u64);
        self.next_seq = first.saturating_add(units.len() as u64);
        Ok(first)
    }

    /// Writes `buf`, honouring any armed write faults; tracks how many
    /// bytes actually landed in the file so rollback knows what to undo.
    fn write_batch(&mut self, buf: &[u8]) -> io::Result<()> {
        let verdict = match &self.faults {
            Some(plan) => plan.on_write(buf.len())?,
            None => WriteVerdict::Pass,
        };
        match verdict {
            WriteVerdict::Pass => {
                self.file.write_all(buf)?;
                self.live_len = self.live_len.saturating_add(buf.len() as u64);
                Ok(())
            }
            WriteVerdict::Torn(keep) => {
                let kept = buf.get(..keep).unwrap_or(buf);
                if self.file.write_all(kept).is_ok() {
                    self.live_len = self.live_len.saturating_add(kept.len() as u64);
                }
                Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "injected fault: torn write",
                ))
            }
        }
    }

    fn sync_per_policy(&mut self, appended: u64, metrics: &Metrics) -> io::Result<()> {
        self.units_since_sync = self.units_since_sync.saturating_add(appended);
        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.units_since_sync >= n,
            FsyncPolicy::Never => false,
        };
        if due {
            self.sync(metrics)?;
        }
        Ok(())
    }

    fn sync(&mut self, metrics: &Metrics) -> io::Result<()> {
        let _span = car_obs::time_span!("wal.fsync");
        if let Some(plan) = &self.faults {
            plan.on_fsync()?;
        }
        self.file.sync_data()?;
        self.units_since_sync = 0;
        metrics.record_wal_fsync();
        Ok(())
    }

    /// Truncates the live segment back to `len` after a failed append.
    /// The file handle is in append mode, so the next write lands at the
    /// new end — no repositioning needed.
    fn rollback_to(&mut self, len: u64) {
        let truncate = match &self.faults {
            Some(plan) => plan.on_truncate().and_then(|()| self.file.set_len(len)),
            None => self.file.set_len(len),
        };
        match truncate {
            Ok(()) => self.live_len = len,
            Err(_) => {
                log_warn(
                    "failed to roll back a torn WAL append; \
                     log marked failed (recovery will truncate on next boot)",
                );
                self.failed = true;
            }
        }
    }

    /// Flushes pending appends to disk regardless of policy (shutdown
    /// drain, pre-rotation seal).
    ///
    /// # Errors
    ///
    /// Propagates fsync failures.
    pub fn flush(&mut self, metrics: &Metrics) -> io::Result<()> {
        if self.failed {
            return Ok(());
        }
        if self.units_since_sync > 0 || matches!(self.policy, FsyncPolicy::Never) {
            self.sync(metrics)?;
        }
        Ok(())
    }

    /// Rotates to a fresh segment and deletes sealed segments fully
    /// covered by a snapshot at `snapshot_seq` (every record they hold
    /// has `seq <= snapshot_seq`). Called after a snapshot has been
    /// durably renamed into place.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; the log stays usable (the old
    /// segment simply keeps growing) unless the seal fsync failed.
    pub fn rotate_and_prune(
        &mut self,
        snapshot_seq: u64,
        metrics: &Metrics,
    ) -> io::Result<()> {
        if self.failed {
            return Err(io::Error::other("write-ahead log is in the failed state"));
        }
        // Seal the live segment: its bytes must be durable before the
        // snapshot is allowed to supersede any of them.
        self.flush(metrics)?;
        if self.live_len > 0 {
            let (path, file) = create_segment(&self.dir, self.next_seq)?;
            let old = Segment {
                first_seq: self.live_first_seq,
                path: std::mem::replace(&mut self.live_path, path),
            };
            self.file = file;
            self.live_first_seq = self.next_seq;
            self.live_len = 0;
            self.sealed.push(old);
        }
        // A sealed segment's records all precede the next segment's
        // first sequence number; it is covered once that bound is at or
        // below the snapshot.
        let live_first = self.live_first_seq;
        let mut kept = Vec::with_capacity(self.sealed.len());
        let sealed = std::mem::take(&mut self.sealed);
        let count = sealed.len();
        let mut upper_bounds =
            sealed.iter().skip(1).map(|s| s.first_seq).collect::<Vec<u64>>();
        upper_bounds.push(live_first);
        for (seg, next_first) in sealed.into_iter().zip(upper_bounds) {
            let covered = next_first.saturating_sub(1) <= snapshot_seq;
            if covered {
                if let Err(e) = std::fs::remove_file(&seg.path) {
                    log_warn(&format!(
                        "could not delete covered WAL segment {}: {e}",
                        seg.path.display()
                    ));
                    kept.push(seg);
                }
            } else {
                kept.push(seg);
            }
        }
        if kept.len() < count && !sync_dir(&self.dir) {
            log_warn("could not fsync the data directory after pruning WAL segments");
        }
        self.sealed = kept;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn unit(ids: &[u32]) -> Vec<ItemSet> {
        vec![ItemSet::from_ids(ids.iter().copied()); 2]
    }

    fn temp_dir() -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "car-wal-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!("always".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Always);
        assert_eq!("never".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Never);
        assert_eq!("every=8".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::EveryN(8));
        assert!("every=0".parse::<FsyncPolicy>().is_err());
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert_eq!(FsyncPolicy::EveryN(8).to_string(), "every=8");
    }

    #[test]
    fn payload_round_trips() {
        let u = unit(&[1, 2, 3]);
        let payload = encode_payload(42, &u);
        let (seq, decoded) = decode_payload(&payload).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(decoded, u);
        // Trailing garbage is rejected.
        let mut long = payload.clone();
        long.push(0);
        assert!(decode_payload(&long).is_none());
        // Truncation is rejected.
        assert!(decode_payload(&payload[..payload.len() - 1]).is_none());
    }

    #[test]
    fn parse_records_stops_at_corruption() {
        let mut buf = Vec::new();
        encode_record_into(1, &unit(&[1, 2]), &mut buf);
        encode_record_into(2, &unit(&[3]), &mut buf);
        let good_len = buf.len() as u64;
        // A torn third record: header + half the payload.
        let mut torn = Vec::new();
        encode_record_into(3, &unit(&[4, 5, 6]), &mut torn);
        buf.extend_from_slice(&torn[..torn.len() / 2]);

        let parsed = parse_records(&buf);
        assert_eq!(parsed.records.len(), 2);
        assert_eq!(parsed.valid_len, good_len);
        assert!(parsed.corruption.is_some());
    }

    #[test]
    fn parse_records_rejects_bit_flips_and_bad_seq() {
        let mut buf = Vec::new();
        encode_record_into(5, &unit(&[1]), &mut buf);
        let mut flipped = buf.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        let parsed = parse_records(&flipped);
        assert!(parsed.records.is_empty());
        assert_eq!(parsed.valid_len, 0);

        // Non-increasing sequence numbers end the log.
        encode_record_into(5, &unit(&[2]), &mut buf);
        let parsed = parse_records(&buf);
        assert_eq!(parsed.records.len(), 1);
        assert!(parsed.corruption.is_some());
    }

    #[test]
    fn append_write_reopen_round_trip() {
        let dir = temp_dir();
        let metrics = Metrics::new();
        let mut wal = Wal::open(&dir, FsyncPolicy::Always, None, 1).unwrap();
        let first = wal.append_batch(&[unit(&[1, 2]), unit(&[3])], &metrics).unwrap();
        assert_eq!(first, 1);
        let first = wal.append_batch(&[unit(&[9])], &metrics).unwrap();
        assert_eq!(first, 3);
        drop(wal);

        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 1);
        let parsed = parse_records(&std::fs::read(&segments[0].path).unwrap());
        assert!(parsed.corruption.is_none());
        let seqs: Vec<u64> = parsed.records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, [1, 2, 3]);

        // Reopening continues the same segment and sequence space.
        let wal = Wal::open(&dir, FsyncPolicy::Always, None, 4).unwrap();
        assert_eq!(wal.next_seq(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_n_policy_batches_fsyncs() {
        let dir = temp_dir();
        let metrics = Metrics::new();
        let mut wal = Wal::open(&dir, FsyncPolicy::EveryN(3), None, 1).unwrap();
        wal.append_batch(&[unit(&[1])], &metrics).unwrap();
        wal.append_batch(&[unit(&[2])], &metrics).unwrap();
        assert_eq!(metrics.wal_fsyncs(), 0);
        wal.append_batch(&[unit(&[3])], &metrics).unwrap();
        assert_eq!(metrics.wal_fsyncs(), 1);
        wal.flush(&metrics).unwrap();
        assert_eq!(metrics.wal_fsyncs(), 1, "flush with nothing pending is free");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_failure_marks_log_failed_and_rejects() {
        let dir = temp_dir();
        let metrics = Metrics::new();
        let plan = FaultPlan::new();
        plan.fail_fsync_from(1);
        let mut wal = Wal::open(&dir, FsyncPolicy::Always, Some(plan), 1).unwrap();
        assert!(wal.append_batch(&[unit(&[1])], &metrics).is_err());
        assert!(wal.is_failed());
        assert!(wal.append_batch(&[unit(&[2])], &metrics).is_err());
        // The rolled-back bytes are gone: a fresh scan sees an empty log.
        let segments = list_segments(&dir).unwrap();
        let parsed = parse_records(&std::fs::read(&segments[0].path).unwrap());
        assert!(parsed.records.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_leaves_tail_for_recovery() {
        let dir = temp_dir();
        let metrics = Metrics::new();
        let plan = FaultPlan::new();
        let mut wal =
            Wal::open(&dir, FsyncPolicy::Always, Some(plan.clone()), 1).unwrap();
        wal.append_batch(&[unit(&[1, 2])], &metrics).unwrap();
        // Second append tears after 5 bytes; the dead storage also
        // blocks the rollback truncation, as a real crash would.
        plan.torn_write_at(2, 5);
        assert!(wal.append_batch(&[unit(&[3, 4])], &metrics).is_err());
        assert!(wal.is_failed());
        drop(wal);

        let segments = list_segments(&dir).unwrap();
        let bytes = std::fs::read(&segments[0].path).unwrap();
        let parsed = parse_records(&bytes);
        assert_eq!(parsed.records.len(), 1, "only the first record survives");
        assert!(parsed.corruption.is_some(), "the torn tail is detected");
        assert!(parsed.valid_len < bytes.len() as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_prunes_covered_segments() {
        let dir = temp_dir();
        let metrics = Metrics::new();
        let mut wal = Wal::open(&dir, FsyncPolicy::Always, None, 1).unwrap();
        wal.append_batch(&[unit(&[1]), unit(&[2])], &metrics).unwrap();
        // Snapshot covers both records: rotate prunes the old segment.
        wal.rotate_and_prune(2, &metrics).unwrap();
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].first_seq, 3);

        // Records beyond the snapshot keep their segment alive.
        wal.append_batch(&[unit(&[3]), unit(&[4])], &metrics).unwrap();
        wal.rotate_and_prune(3, &metrics).unwrap();
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 2, "segment with seq 4 must survive: {segments:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
