//! Boot-time recovery: snapshot + WAL tail → the retained window.
//!
//! Recovery is deliberately forgiving about *tails* and strict about
//! *prefixes*: everything up to the first torn, corrupt, or
//! out-of-sequence record is trusted (each record carried a CRC the
//! writer computed before acknowledging the unit), and everything from
//! that point on is discarded — physically truncated from the segment
//! and counted in `recovery_truncated_records` — because a record after
//! damage has unknown provenance even when its own checksum passes.
//! Recovery never panics on corrupt input; the worst disk state recovers
//! to the longest verifiable prefix.

use std::io;
use std::path::Path;

use car_itemset::ItemSet;

use crate::persist::snapshot::load_snapshot;
use crate::persist::wal::{list_segments, parse_records};
use crate::sync::log_warn;

/// Everything recovery reconstructed from the data directory.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Units to re-apply to the miner in order: the snapshot window
    /// first, then the replayed WAL tail.
    pub units: Vec<Vec<ItemSet>>,
    /// Sequence number of the newest recovered unit (0 = empty store).
    pub last_seq: u64,
    /// How many of `units` came from the snapshot.
    pub snapshot_units: usize,
    /// How many of `units` were replayed from the WAL tail.
    pub replayed_units: usize,
    /// Corrupt-tail events plus whole records discarded after the first
    /// point of damage. Zero on a clean boot.
    pub truncated_records: u64,
}

/// Truncates `path` to `len` bytes and syncs, so the corruption cannot
/// be re-discovered (or mis-parsed differently) on the next boot.
fn truncate_segment(path: &Path, len: u64) {
    let result = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .and_then(|file| file.set_len(len).and_then(|()| file.sync_all()));
    if let Err(e) = result {
        log_warn(&format!(
            "could not truncate corrupt WAL tail in {}: {e} \
             (recovery will re-truncate next boot)",
            path.display()
        ));
    }
}

/// Loads the latest valid snapshot and replays the WAL tail.
///
/// Corruption is handled, not propagated: the scan stops at the first
/// bad record, the segment is truncated to its valid prefix, later
/// segments are deleted, and the discarded work is tallied in
/// [`Recovery::truncated_records`].
///
/// # Errors
///
/// Only environmental failures (unreadable directory or segment) are
/// errors; corrupt *contents* are recovered from.
pub fn recover(dir: &Path) -> io::Result<Recovery> {
    let mut out = Recovery::default();
    if let Some(snapshot) = load_snapshot(dir) {
        out.last_seq = snapshot.last_seq;
        out.snapshot_units = snapshot.units.len();
        out.units = snapshot.units;
    }

    let segments = list_segments(dir)?;
    let mut stop_replay = false;
    for segment in &segments {
        if stop_replay {
            // Everything after the first damaged segment is untrusted;
            // count what parses so the operator sees the loss.
            let parsed = parse_records(&std::fs::read(&segment.path)?);
            out.truncated_records =
                out.truncated_records.saturating_add(parsed.records.len() as u64);
            if let Err(e) = std::fs::remove_file(&segment.path) {
                log_warn(&format!(
                    "could not delete untrusted WAL segment {}: {e}",
                    segment.path.display()
                ));
            }
            continue;
        }
        let bytes = std::fs::read(&segment.path)?;
        let parsed = parse_records(&bytes);
        for (seq, unit) in parsed.records {
            if seq <= out.last_seq {
                // Already covered by the snapshot (or a duplicate from a
                // crash between snapshot rename and segment prune).
                continue;
            }
            if out.last_seq != 0 && seq != out.last_seq.saturating_add(1) {
                log_warn(&format!(
                    "WAL sequence gap in {}: expected {}, found {seq}; \
                     truncating here",
                    segment.path.display(),
                    out.last_seq.saturating_add(1)
                ));
                out.truncated_records = out.truncated_records.saturating_add(1);
                stop_replay = true;
                break;
            }
            out.last_seq = seq;
            out.replayed_units = out.replayed_units.saturating_add(1);
            out.units.push(unit);
        }
        if let Some(why) = parsed.corruption {
            if !stop_replay {
                log_warn(&format!(
                    "WAL segment {} damaged after byte {}: {why}; \
                     truncating to the last valid record",
                    segment.path.display(),
                    parsed.valid_len
                ));
                out.truncated_records = out.truncated_records.saturating_add(1);
            }
            if parsed.valid_len < bytes.len() as u64 {
                truncate_segment(&segment.path, parsed.valid_len);
            }
            stop_replay = true;
        } else if stop_replay {
            // Sequence gap stopped replay mid-segment: drop the rest of
            // this segment's bytes too.
            truncate_segment(&segment.path, 0);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::persist::fault::{append_garbage, chop_tail, flip_bit};
    use crate::persist::snapshot::write_snapshot;
    use crate::persist::wal::{FsyncPolicy, Wal};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir() -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "car-replay-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn unit(id: u32) -> Vec<ItemSet> {
        vec![ItemSet::from_ids([id, id + 1]), ItemSet::from_ids([id])]
    }

    fn write_units(dir: &Path, next_seq: u64, ids: &[u32]) {
        let metrics = Metrics::new();
        let mut wal = Wal::open(dir, FsyncPolicy::Always, None, next_seq).unwrap();
        let units: Vec<Vec<ItemSet>> = ids.iter().map(|&i| unit(i)).collect();
        wal.append_batch(&units, &metrics).unwrap();
    }

    #[test]
    fn empty_dir_recovers_empty() {
        let dir = temp_dir();
        let r = recover(&dir).unwrap();
        assert_eq!(r.last_seq, 0);
        assert!(r.units.is_empty());
        assert_eq!(r.truncated_records, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_only_recovery() {
        let dir = temp_dir();
        write_units(&dir, 1, &[10, 20, 30]);
        let r = recover(&dir).unwrap();
        assert_eq!(r.last_seq, 3);
        assert_eq!(r.units, vec![unit(10), unit(20), unit(30)]);
        assert_eq!((r.snapshot_units, r.replayed_units), (0, 3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_plus_tail_skips_covered_records() {
        let dir = temp_dir();
        write_units(&dir, 1, &[10, 20, 30, 40]);
        // Snapshot covers seqs 1–3 but retains only the last two units.
        write_snapshot(&dir, 3, &[unit(20), unit(30)]).unwrap();
        let r = recover(&dir).unwrap();
        assert_eq!(r.last_seq, 4);
        assert_eq!(r.units, vec![unit(20), unit(30), unit(40)]);
        assert_eq!((r.snapshot_units, r.replayed_units), (2, 1));
        assert_eq!(r.truncated_records, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_once() {
        let dir = temp_dir();
        write_units(&dir, 1, &[10, 20, 30]);
        let seg = &list_segments(&dir).unwrap()[0];
        chop_tail(&seg.path, 3).unwrap();

        let r = recover(&dir).unwrap();
        assert_eq!(r.last_seq, 2, "third record was torn");
        assert_eq!(r.truncated_records, 1);

        // The file was physically truncated: a second boot is clean.
        let r = recover(&dir).unwrap();
        assert_eq!(r.last_seq, 2);
        assert_eq!(r.truncated_records, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_truncates_from_damaged_record() {
        let dir = temp_dir();
        write_units(&dir, 1, &[10, 20]);
        let seg = &list_segments(&dir).unwrap()[0];
        // Damage the first record: everything is discarded.
        flip_bit(&seg.path, 10, 3).unwrap();
        let r = recover(&dir).unwrap();
        assert_eq!(r.last_seq, 0);
        assert!(r.units.is_empty());
        assert!(r.truncated_records >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_tail_is_detected() {
        let dir = temp_dir();
        write_units(&dir, 1, &[10]);
        let seg = &list_segments(&dir).unwrap()[0];
        append_garbage(&seg.path, 13).unwrap();
        let r = recover(&dir).unwrap();
        assert_eq!(r.last_seq, 1);
        assert_eq!(r.truncated_records, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_after_damage_are_dropped_and_counted() {
        let dir = temp_dir();
        let metrics = Metrics::new();
        let mut wal = Wal::open(&dir, FsyncPolicy::Always, None, 1).unwrap();
        wal.append_batch(&[unit(10), unit(20)], &metrics).unwrap();
        // Rotate with an uncovering snapshot seq so both segments stay.
        wal.rotate_and_prune(0, &metrics).unwrap();
        wal.append_batch(&[unit(30), unit(40)], &metrics).unwrap();
        drop(wal);
        assert_eq!(list_segments(&dir).unwrap().len(), 2);
        let first = &list_segments(&dir).unwrap()[0];
        chop_tail(&first.path, 2).unwrap();

        let r = recover(&dir).unwrap();
        assert_eq!(r.last_seq, 1, "seq 2 torn; 3–4 untrusted");
        // 1 torn event + 2 discarded later records.
        assert_eq!(r.truncated_records, 3);
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
