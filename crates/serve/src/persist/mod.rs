//! Durability for the car-serve daemon: WAL + snapshots + recovery.
//!
//! The contract, end to end: a unit is acknowledged (`202`) only after
//! it is in the write-ahead log ([`wal`]) under the configured
//! [`FsyncPolicy`]; the ingest worker applies acknowledged units to the
//! miner and mirrors them into a retained ring; every `snapshot_every`
//! applied units the ring is serialized to an atomically-renamed
//! snapshot ([`snapshot`]) and fully-covered WAL segments are pruned; on
//! boot, [`replay`] rebuilds the window from snapshot + WAL tail,
//! truncating at the first sign of damage instead of panicking. The
//! [`fault`] module exists to attack all of the above in tests.
//!
//! [`Persistence`] is the handle the daemon state holds: it owns the WAL
//! writer (behind a mutex that the ingest path also uses to keep WAL
//! order identical to apply order) and the retained ring.

pub mod crc;
pub mod fault;
pub mod replay;
pub mod snapshot;
pub mod wal;

use std::collections::VecDeque;
use std::io;
use std::path::PathBuf;
use std::sync::Mutex;

use car_itemset::ItemSet;

use crate::metrics::Metrics;
use crate::sync::{log_warn, LockExt};
use fault::FaultPlan;
use replay::Recovery;
use wal::{FsyncPolicy, Wal};

/// Configuration for the durability layer.
#[derive(Clone, Debug)]
pub struct PersistConfig {
    /// Directory holding WAL segments and the snapshot.
    pub data_dir: PathBuf,
    /// When the WAL fsyncs.
    pub fsync: FsyncPolicy,
    /// Snapshot after this many applied units (0 disables periodic
    /// snapshots; one is still written at graceful shutdown).
    pub snapshot_every: u64,
    /// Test-only scripted storage faults.
    pub faults: Option<FaultPlan>,
}

impl PersistConfig {
    /// A config with the given data directory and default policies
    /// (fsync always, snapshot every 64 units, no faults).
    pub fn new(data_dir: impl Into<PathBuf>) -> PersistConfig {
        PersistConfig {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::Always,
            snapshot_every: 64,
            faults: None,
        }
    }
}

/// The WAL writer's lifecycle, guarded by one mutex.
///
/// `Pending` until boot recovery finishes (ingest gets `503
/// recovering`), `Open` while accepting, `Failed` after an fsync/rollback
/// failure (ingest gets `503` — the daemon will not acknowledge what it
/// cannot make durable).
pub(crate) enum WalSlot {
    /// Recovery has not finished; no appends yet.
    Pending,
    /// The log is accepting appends.
    Open(Wal),
    /// The log refused service permanently (storage fault).
    Failed,
}

/// The retained window mirror: raw units for snapshotting, since the
/// miner itself only caches per-unit rule state.
struct Retained {
    units: VecDeque<Vec<ItemSet>>,
    last_seq: u64,
    since_snapshot: u64,
}

/// The durability handle held by the daemon state.
pub struct Persistence {
    config: PersistConfig,
    window: usize,
    /// The WAL writer. The ingest path holds this lock across sequence
    /// assignment, WAL append, and queue push, so WAL order, sequence
    /// order, and apply order are one and the same.
    pub(crate) wal: Mutex<WalSlot>,
    retained: Mutex<Retained>,
}

impl Persistence {
    /// Prepares the durability layer: creates the data directory if
    /// missing. The WAL stays [`WalSlot::Pending`] until [`recover`]
    /// (called by the ingest worker) completes.
    ///
    /// [`recover`]: Persistence::recover
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new(config: PersistConfig, window: usize) -> io::Result<Persistence> {
        std::fs::create_dir_all(&config.data_dir)?;
        Ok(Persistence {
            config,
            window: window.max(1),
            wal: Mutex::new(WalSlot::Pending),
            retained: Mutex::new(Retained {
                units: VecDeque::new(),
                last_seq: 0,
                since_snapshot: 0,
            }),
        })
    }

    /// The data directory in use.
    pub fn data_dir(&self) -> &std::path::Path {
        &self.config.data_dir
    }

    /// Runs boot recovery: loads the snapshot, replays the WAL tail,
    /// seeds the retained ring, and opens the WAL for appends. Returns
    /// the recovered units for the caller to apply to the miner.
    ///
    /// # Errors
    ///
    /// Environmental failures only (unreadable directory/segments);
    /// corrupt contents are truncated and tallied, not errors.
    pub fn recover(&self, metrics: &Metrics) -> io::Result<Recovery> {
        let recovery = replay::recover(&self.config.data_dir)?;
        if recovery.truncated_records > 0 {
            metrics.record_recovery_truncated(recovery.truncated_records);
        }
        {
            let mut retained = self.retained.lock_or_recover();
            retained.last_seq = recovery.last_seq;
            retained.units.clear();
            let skip = recovery.units.len().saturating_sub(self.window);
            retained.units.extend(recovery.units.iter().skip(skip).cloned());
            retained.since_snapshot = 0;
        }
        let next_seq = recovery.last_seq.saturating_add(1);
        let wal = Wal::open(
            &self.config.data_dir,
            self.config.fsync,
            self.config.faults.clone(),
            next_seq,
        )?;
        *self.wal.lock_or_recover() = WalSlot::Open(wal);
        Ok(recovery)
    }

    /// Called by the ingest worker after a unit is applied to the miner:
    /// mirrors it into the retained ring and snapshots when due.
    pub fn record_applied(&self, seq: u64, unit: &[ItemSet], metrics: &Metrics) {
        let due = {
            let mut retained = self.retained.lock_or_recover();
            retained.units.push_back(unit.to_vec());
            while retained.units.len() > self.window {
                retained.units.pop_front();
            }
            retained.last_seq = seq;
            retained.since_snapshot = retained.since_snapshot.saturating_add(1);
            let every = self.config.snapshot_every;
            if every > 0 && retained.since_snapshot >= every {
                retained.since_snapshot = 0;
                true
            } else {
                false
            }
        };
        if due {
            self.snapshot_now(metrics);
        }
    }

    /// Writes a snapshot of the current retained ring and prunes covered
    /// WAL segments. Failures are logged, never fatal: the WAL is still
    /// the source of truth and the old snapshot remains valid.
    pub fn snapshot_now(&self, metrics: &Metrics) {
        let _span = car_obs::time_span!("wal.snapshot");
        let (last_seq, units) = {
            let retained = self.retained.lock_or_recover();
            let units: Vec<Vec<ItemSet>> = retained.units.iter().cloned().collect();
            (retained.last_seq, units)
        };
        if let Err(e) = snapshot::write_snapshot(&self.config.data_dir, last_seq, &units)
        {
            log_warn(&format!("snapshot write failed (WAL remains authoritative): {e}"));
            metrics.record_wal_error();
            return;
        }
        metrics.record_snapshot();
        car_obs::debug!(
            "wal",
            [last_seq = last_seq, units = units.len()],
            "snapshot written"
        );
        let mut slot = self.wal.lock_or_recover();
        if let WalSlot::Open(wal) = &mut *slot {
            match wal.rotate_and_prune(last_seq, metrics) {
                Ok(()) => {}
                Err(e) => {
                    log_warn(&format!("WAL rotation after snapshot failed: {e}"));
                    metrics.record_wal_error();
                    if wal.is_failed() {
                        *slot = WalSlot::Failed;
                    }
                }
            }
        }
    }

    /// Shutdown-drain flush: force the WAL to disk regardless of policy
    /// and leave a fresh snapshot so the next boot replays nothing.
    pub fn flush_on_shutdown(&self, metrics: &Metrics) {
        {
            let mut slot = self.wal.lock_or_recover();
            if let WalSlot::Open(wal) = &mut *slot {
                match wal.flush(metrics) {
                    Ok(()) => {}
                    Err(e) => {
                        log_warn(&format!("final WAL flush failed: {e}"));
                        metrics.record_wal_error();
                        *slot = WalSlot::Failed;
                        return;
                    }
                }
            } else {
                return;
            }
        }
        self.snapshot_now(metrics);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir() -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "car-persist-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn unit(id: u32) -> Vec<ItemSet> {
        vec![ItemSet::from_ids([id]), ItemSet::from_ids([id, id + 7])]
    }

    fn append(p: &Persistence, metrics: &Metrics, units: &[Vec<ItemSet>]) -> u64 {
        let mut slot = p.wal.lock_or_recover();
        match &mut *slot {
            WalSlot::Open(wal) => wal.append_batch(units, metrics).unwrap(),
            _ => panic!("wal not open"),
        }
    }

    #[test]
    fn fresh_boot_then_restart_recovers_everything() {
        let dir = temp_dir();
        let metrics = Metrics::new();
        let p = Persistence::new(PersistConfig::new(&dir), 8).unwrap();
        let r = p.recover(&metrics).unwrap();
        assert_eq!((r.last_seq, r.units.len()), (0, 0));

        let first = append(&p, &metrics, &[unit(1), unit(2), unit(3)]);
        assert_eq!(first, 1);
        for (i, u) in [unit(1), unit(2), unit(3)].iter().enumerate() {
            p.record_applied(first + i as u64, u, &metrics);
        }
        p.flush_on_shutdown(&metrics);
        assert_eq!(metrics.snapshots(), 1);
        drop(p);

        let p = Persistence::new(PersistConfig::new(&dir), 8).unwrap();
        let metrics2 = Metrics::new();
        let r = p.recover(&metrics2).unwrap();
        assert_eq!(r.last_seq, 3);
        assert_eq!(r.units, vec![unit(1), unit(2), unit(3)]);
        assert_eq!(metrics2.recovery_truncated(), 0);
        // Sequence numbers continue where they left off.
        assert_eq!(append(&p, &metrics2, &[unit(9)]), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn periodic_snapshot_bounds_replay_and_ring_respects_window() {
        let dir = temp_dir();
        let metrics = Metrics::new();
        let mut config = PersistConfig::new(&dir);
        config.snapshot_every = 2;
        let p = Persistence::new(config, 3).unwrap();
        p.recover(&metrics).unwrap();
        for i in 1..=7u64 {
            let u = unit(i as u32);
            assert_eq!(append(&p, &metrics, std::slice::from_ref(&u)), i);
            p.record_applied(i, &u, &metrics);
        }
        assert_eq!(metrics.snapshots(), 3, "snapshots at 2, 4, 6");
        drop(p);

        // Restart without a graceful flush: window = last 3 units only.
        let p = Persistence::new(PersistConfig::new(&dir), 3).unwrap();
        let r = p.recover(&Metrics::new()).unwrap();
        assert_eq!(r.last_seq, 7);
        assert_eq!(
            r.units.last(),
            Some(&unit(7)),
            "replayed tail ends at the newest unit"
        );
        // Snapshot at seq 6 held units 4..=6 (window 3); replay adds 7.
        assert_eq!(r.units, vec![unit(4), unit(5), unit(6), unit(7)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_failure_closes_the_wal_slot() {
        let dir = temp_dir();
        let metrics = Metrics::new();
        let plan = FaultPlan::new();
        let mut config = PersistConfig::new(&dir);
        config.faults = Some(plan.clone());
        let p = Persistence::new(config, 4).unwrap();
        p.recover(&metrics).unwrap();
        append(&p, &metrics, &[unit(1)]);
        plan.fail_fsync_from(2);
        {
            let mut slot = p.wal.lock_or_recover();
            let WalSlot::Open(wal) = &mut *slot else { panic!("not open") };
            assert!(wal.append_batch(&[unit(2)], &metrics).is_err());
            assert!(wal.is_failed());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
