//! Window snapshots: the retained units, serialized and atomically
//! swapped into place.
//!
//! A snapshot bounds recovery work — on boot the daemon loads the
//! snapshot and replays only the WAL records after it, instead of the
//! entire history. The write protocol is the classic atomic-rename
//! dance: serialize to `snapshot.car.tmp`, fsync the temp file, rename
//! it over `snapshot.car`, fsync the directory. A crash at any point
//! leaves either the old complete snapshot or the new complete snapshot,
//! never a half-written one; a corrupt snapshot (checksum mismatch,
//! short file) is ignored with a warning and recovery falls back to
//! replaying the WAL from the beginning.
//!
//! ## Format
//!
//! ```text
//! snapshot = magic:"CARSNAP1"  crc:u32le  len:u64le  payload
//! payload  = last_seq:u64le  n_units:u32le  unit*
//! unit     = ntx:u32le  ( nitems:u32le  item:u32le* )*
//! ```
//!
//! `crc` covers the payload; `len` is the payload length.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use car_itemset::ItemSet;

use crate::persist::crc::crc32;
use crate::persist::wal::{decode_unit, encode_unit_into};
use crate::sync::log_warn;

/// Magic bytes identifying a version-1 snapshot.
pub const MAGIC: &[u8; 8] = b"CARSNAP1";

/// Final snapshot file name within the data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.car";

/// Temp file the new snapshot is staged in before the rename.
pub const SNAPSHOT_TMP_FILE: &str = "snapshot.car.tmp";

/// A successfully loaded snapshot.
#[derive(Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Sequence number of the newest unit the snapshot contains; WAL
    /// records at or below this are already reflected here.
    pub last_seq: u64,
    /// The retained window at snapshot time, oldest first.
    pub units: Vec<Vec<ItemSet>>,
}

/// Path of the live snapshot inside `dir`.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

fn encode(last_seq: u64, units: &[Vec<ItemSet>]) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&last_seq.to_le_bytes());
    payload.extend_from_slice(&(units.len() as u32).to_le_bytes());
    for unit in units {
        encode_unit_into(unit, &mut payload);
    }
    let mut out = Vec::with_capacity(MAGIC.len() + 12 + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn decode(bytes: &[u8]) -> Option<Snapshot> {
    let rest = bytes.strip_prefix(MAGIC.as_slice())?;
    let crc = u32::from_le_bytes(rest.get(..4)?.try_into().ok()?);
    let len = u64::from_le_bytes(rest.get(4..12)?.try_into().ok()?);
    let payload = rest.get(12..)?;
    if payload.len() as u64 != len || crc32(payload) != crc {
        return None;
    }
    let mut pos = 0usize;
    let last_seq = u64::from_le_bytes(payload.get(..8)?.try_into().ok()?);
    pos += 8;
    let n_units = u32::from_le_bytes(payload.get(8..12)?.try_into().ok()?) as usize;
    pos += 4;
    let mut units = Vec::with_capacity(n_units.min(1 << 20));
    for _ in 0..n_units {
        units.push(decode_unit(payload, &mut pos)?);
    }
    if pos != payload.len() {
        return None;
    }
    Some(Snapshot { last_seq, units })
}

/// Serializes the retained window and atomically replaces the previous
/// snapshot.
///
/// # Errors
///
/// Propagates filesystem failures; on error the previous snapshot (if
/// any) is still intact.
pub fn write_snapshot(
    dir: &Path,
    last_seq: u64,
    units: &[Vec<ItemSet>],
) -> io::Result<()> {
    let bytes = encode(last_seq, units);
    let tmp = dir.join(SNAPSHOT_TMP_FILE);
    {
        let mut file =
            OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, snapshot_path(dir))?;
    // The rename must itself be durable, or a crash could resurrect the
    // old snapshot after the WAL segments it needed were pruned.
    match File::open(dir) {
        Ok(handle) => handle.sync_all()?,
        Err(e) => return Err(e),
    }
    Ok(())
}

/// Loads the snapshot from `dir`, if a valid one exists.
///
/// Returns `None` — with a logged warning for anything other than a
/// simply-missing file — when the snapshot is absent, unreadable, or
/// fails validation; recovery then replays the WAL from the start.
pub fn load_snapshot(dir: &Path) -> Option<Snapshot> {
    let path = snapshot_path(dir);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
        Err(e) => {
            log_warn(&format!("could not read snapshot {}: {e}", path.display()));
            return None;
        }
    };
    match decode(&bytes) {
        Some(snapshot) => Some(snapshot),
        None => {
            log_warn(&format!(
                "snapshot {} is corrupt; ignoring it and replaying the full WAL",
                path.display()
            ));
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir() -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "car-snap-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn units() -> Vec<Vec<ItemSet>> {
        vec![
            vec![ItemSet::from_ids([1, 2]), ItemSet::from_ids([3])],
            vec![ItemSet::from_ids([4])],
            vec![],
        ]
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = temp_dir();
        write_snapshot(&dir, 17, &units()).unwrap();
        let loaded = load_snapshot(&dir).unwrap();
        assert_eq!(loaded.last_seq, 17);
        assert_eq!(loaded.units, units());
        // No temp file left behind.
        assert!(!dir.join(SNAPSHOT_TMP_FILE).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_replaces_previous_snapshot() {
        let dir = temp_dir();
        write_snapshot(&dir, 3, &units()).unwrap();
        write_snapshot(&dir, 9, &units()[..1]).unwrap();
        let loaded = load_snapshot(&dir).unwrap();
        assert_eq!(loaded.last_seq, 9);
        assert_eq!(loaded.units.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_is_none() {
        let dir = temp_dir();
        assert!(load_snapshot(&dir).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_rejected() {
        let dir = temp_dir();
        write_snapshot(&dir, 5, &units()).unwrap();
        let path = snapshot_path(&dir);

        // Bit flip in the payload.
        let good = std::fs::read(&path).unwrap();
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        assert!(load_snapshot(&dir).is_none());

        // Truncated file.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(load_snapshot(&dir).is_none());

        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(load_snapshot(&dir).is_none());

        // The original still loads.
        std::fs::write(&path, &good).unwrap();
        assert_eq!(load_snapshot(&dir).unwrap().last_seq, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
