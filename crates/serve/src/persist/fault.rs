//! Fault injection for the durability layer — **test-only hooks**.
//!
//! Crash-safety claims are only as good as the crashes they survive, so
//! the persistence layer is built to be attacked: a [`FaultPlan`] can be
//! handed to the daemon (via
//! [`PersistConfig::faults`](crate::persist::PersistConfig)) to make the
//! WAL misbehave on cue — short writes, write failures, and fsync
//! failures — and the free functions corrupt files on disk the way a
//! crash or a decaying disk would (torn tails, bit flips, garbage
//! appends). Integration tests combine both: kill the daemon mid-ingest,
//! damage the log, restart, and assert the recovered window still equals
//! batch-mining the acknowledged units.
//!
//! Nothing here is compiled out in release builds — the hooks are plain
//! data consulted by the WAL writer and cost one `Option` check per
//! operation when unused — but no production code path ever constructs a
//! [`FaultPlan`].

use std::fs::OpenOptions;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// What the WAL should do with one write it was asked to perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum WriteVerdict {
    /// Perform the write normally.
    Pass,
    /// Write only the first `n` bytes, then report failure — a torn
    /// write, as when the process dies or the disk fills mid-record.
    Torn(usize),
}

/// A scripted set of storage faults, shared with the WAL writer.
///
/// Cloning is cheap (the state is behind an [`Arc`]), so tests keep one
/// handle to steer faults while the daemon holds the other.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    state: Arc<FaultState>,
}

#[derive(Debug, Default)]
struct FaultState {
    /// 1-based fsync index from which every fsync fails; 0 = disabled.
    fail_fsync_from: AtomicU64,
    /// fsyncs attempted so far.
    fsyncs: AtomicU64,
    /// 1-based batch-write index to tear; 0 = disabled.
    torn_write_at: AtomicU64,
    /// Bytes to let through on the torn write.
    torn_keep_bytes: AtomicU64,
    /// Batch writes attempted so far.
    writes: AtomicU64,
    /// Once set, every storage operation fails — the disk is "gone",
    /// so even the rollback truncation after a failed write cannot run
    /// and the torn tail survives to the next boot.
    dead: AtomicBool,
}

impl FaultPlan {
    /// A plan with no faults armed.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Arms an fsync failure: the `n`-th fsync (1-based) and every one
    /// after it return an error.
    pub fn fail_fsync_from(&self, n: u64) {
        self.state.fail_fsync_from.store(n.max(1), Ordering::SeqCst);
    }

    /// Arms a torn write: the `n`-th batch write (1-based) persists only
    /// its first `keep_bytes` bytes, then the storage goes dead — as if
    /// the machine lost power mid-write.
    pub fn torn_write_at(&self, n: u64, keep_bytes: u64) {
        self.state.torn_keep_bytes.store(keep_bytes, Ordering::SeqCst);
        self.state.torn_write_at.store(n.max(1), Ordering::SeqCst);
    }

    /// Whether the simulated storage has gone dead.
    pub fn is_dead(&self) -> bool {
        self.state.dead.load(Ordering::SeqCst)
    }

    fn dead_error(&self) -> io::Error {
        io::Error::other("injected fault: storage is dead")
    }

    /// Consulted before each batch write of `len` bytes.
    pub(crate) fn on_write(&self, len: usize) -> Result<WriteVerdict, io::Error> {
        if self.is_dead() {
            return Err(self.dead_error());
        }
        let n = self.state.writes.fetch_add(1, Ordering::SeqCst) + 1;
        let torn_at = self.state.torn_write_at.load(Ordering::SeqCst);
        if torn_at != 0 && n >= torn_at {
            self.state.dead.store(true, Ordering::SeqCst);
            let keep = self.state.torn_keep_bytes.load(Ordering::SeqCst);
            let keep = usize::try_from(keep).unwrap_or(usize::MAX).min(len);
            return Ok(WriteVerdict::Torn(keep));
        }
        Ok(WriteVerdict::Pass)
    }

    /// Consulted before each fsync.
    pub(crate) fn on_fsync(&self) -> io::Result<()> {
        if self.is_dead() {
            return Err(self.dead_error());
        }
        let n = self.state.fsyncs.fetch_add(1, Ordering::SeqCst) + 1;
        let from = self.state.fail_fsync_from.load(Ordering::SeqCst);
        if from != 0 && n >= from {
            return Err(io::Error::other("injected fault: fsync failed"));
        }
        Ok(())
    }

    /// Consulted before truncating back a failed append.
    pub(crate) fn on_truncate(&self) -> io::Result<()> {
        if self.is_dead() {
            return Err(self.dead_error());
        }
        Ok(())
    }
}

/// Shortens `path` by `bytes` from the end — a torn tail, as left behind
/// by a crash between the length prefix landing and the payload landing.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn chop_tail(path: &Path, bytes: u64) -> io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    let len = file.metadata()?.len();
    file.set_len(len.saturating_sub(bytes))?;
    file.sync_all()
}

/// Flips one bit of the byte at `offset` in `path` — silent media
/// corruption that only a checksum can catch.
///
/// # Errors
///
/// Propagates filesystem errors; `InvalidInput` when `offset` is past
/// the end of the file.
pub fn flip_bit(path: &Path, offset: u64, bit: u8) -> io::Result<()> {
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    file.seek(SeekFrom::Start(offset))?;
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte)?;
    // audit:allow(a1-index) reason="byte is a fixed [u8; 1]; index 0 always exists"
    byte[0] ^= 1u8.checked_shl(u32::from(bit.min(7))).unwrap_or(1);
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(&byte)?;
    file.sync_all()
}

/// Appends `bytes` of garbage to `path` — a partially-written record
/// whose length prefix never made sense.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn append_garbage(path: &Path, bytes: usize) -> io::Result<()> {
    let mut file = OpenOptions::new().append(true).open(path)?;
    let garbage: Vec<u8> = (0..bytes).map(|i| (i as u8) ^ 0xA5).collect();
    file.write_all(&garbage)?;
    file.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torn_write_kills_storage() {
        let plan = FaultPlan::new();
        plan.torn_write_at(2, 5);
        assert_eq!(plan.on_write(100).unwrap(), WriteVerdict::Pass);
        assert_eq!(plan.on_write(100).unwrap(), WriteVerdict::Torn(5));
        assert!(plan.is_dead());
        assert!(plan.on_write(100).is_err());
        assert!(plan.on_fsync().is_err());
        assert!(plan.on_truncate().is_err());
    }

    #[test]
    fn fsync_fails_from_index() {
        let plan = FaultPlan::new();
        plan.fail_fsync_from(3);
        assert!(plan.on_fsync().is_ok());
        assert!(plan.on_fsync().is_ok());
        assert!(plan.on_fsync().is_err());
        assert!(plan.on_fsync().is_err());
        // fsync failures do not kill writes.
        assert_eq!(plan.on_write(10).unwrap(), WriteVerdict::Pass);
    }

    #[test]
    fn file_corruption_helpers() {
        let dir = std::env::temp_dir().join(format!(
            "car-fault-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.bin");
        std::fs::write(&path, [0u8; 16]).unwrap();

        chop_tail(&path, 6).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 10);

        flip_bit(&path, 3, 2).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[3], 0b100);

        append_garbage(&path, 4).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 14);

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
