//! CRC-32 (IEEE 802.3) for WAL records and snapshots.
//!
//! The durability layer checksums every length-prefixed WAL record and
//! every snapshot payload so torn writes and bit flips are detected at
//! recovery time instead of silently corrupting the mined window. The
//! build environment has no route to a crates registry, so the checksum
//! is hand-rolled: the standard reflected CRC-32 with the 0xEDB88320
//! polynomial, table-driven, with the table built at compile time.

/// The reflected CRC-32 polynomial (IEEE 802.3, zlib, PNG, ...).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, one shift-reduce step per byte.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { POLY ^ (crc >> 1) } else { crc >> 1 };
            bit += 1;
        }
        // audit:allow(a1-index) reason="i is bounded by the `while i < 256` loop over a 256-entry table; const-evaluated at compile time"
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        let idx = ((crc ^ u32::from(byte)) & 0xFF) as usize;
        // audit:allow(a1-index) reason="idx is masked with & 0xFF, always within the 256-entry table"
        crc = TABLE[idx] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = crc32(b"hello, wal");
        let mut corrupted = b"hello, wal".to_vec();
        for byte in 0..corrupted.len() {
            for bit in 0..8u8 {
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at {byte}:{bit} undetected");
                corrupted[byte] ^= 1 << bit;
            }
        }
    }
}
