//! A minimal JSON value type with a recursive-descent parser and a
//! renderer.
//!
//! The serving layer needs JSON for request bodies and responses, and
//! the build environment has no route to a crates registry, so this is
//! hand-rolled: a small, strict subset-of-nothing implementation of RFC
//! 8259 sufficient for the daemon's wire format. Objects preserve
//! insertion order (rendered output is deterministic), numbers are
//! `f64`, and parsing enforces a nesting-depth limit so adversarial
//! bodies cannot blow the stack.

use std::fmt;

/// Maximum nesting depth accepted by [`Json::parse`]. Deeper documents
/// are rejected with a parse error (the daemon maps it to a 400) well
/// before the recursive parser could exhaust the stack.
const MAX_DEPTH: usize = 128;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

/// Parse failures, with enough context for a useful 400 body.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => render_number(*n, out),
            Json::String(s) => render_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Number(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Number(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Number(v as f64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Number(f64::from(v))
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::String(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::String(v)
    }
}

/// Builds an object from `(key, value)` pairs.
pub fn object<const N: usize>(pairs: [(&str, Json); N]) -> Json {
    Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the least-bad encoding.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Everything from the cursor to the end of input (empty once past
    /// the end, so callers never index out of bounds).
    fn rest(&self) -> &'a [u8] {
        self.bytes.get(self.pos..).unwrap_or(&[])
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.rest().starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected `{text}`)")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(self.bytes.get(start..self.pos).unwrap_or(&[]))
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| JsonError {
            offset: start,
            message: format!("invalid number `{text}`"),
        })?;
        if !n.is_finite() {
            return Err(JsonError {
                offset: start,
                message: format!("number `{text}` overflows"),
            });
        }
        Ok(Json::Number(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("control character in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so this is
                    // always a valid boundary walk).
                    let rest = std::str::from_utf8(self.rest())
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let Some(c) = rest.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        // Combine surrogate pairs; unpaired surrogates are an error.
        if (0xD800..=0xDBFF).contains(&first) {
            if self.rest().starts_with(b"\\u") {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xDC00..=0xDFFF).contains(&second) {
                    let cp = 0x10000
                        + ((u32::from(first) - 0xD800) << 10)
                        + (u32::from(second) - 0xDC00);
                    return char::from_u32(cp)
                        .ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(u32::from(first)).ok_or_else(|| self.err("invalid code point"))
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        let Some(raw) = self.bytes.get(self.pos..end) else {
            return Err(self.err("truncated \\u escape"));
        };
        let text =
            std::str::from_utf8(raw).map_err(|_| self.err("invalid \\u escape"))?;
        let v =
            u16::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Number(-250.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let a = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#""line\n\ttab \"q\" \u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("line\n\ttab \"q\" é 😀"));
        let rendered = Json::String("a\"b\\c\nd\u{1}".into()).render();
        assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some("a\"b\\c\nd\u{1}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "01x",
            "1 2",
            "{\"a\" 1}",
            "\"\\u12\"",
            "\"\\ud800\"",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 10) + &"]".repeat(MAX_DEPTH + 10);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH / 2) + &"]".repeat(MAX_DEPTH / 2);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn renders_deterministically() {
        let v = object([
            ("b", Json::from(1u64)),
            ("a", Json::Array(vec![Json::Null, Json::from(true)])),
        ]);
        assert_eq!(v.render(), r#"{"b":1,"a":[null,true]}"#);
    }

    #[test]
    fn number_accessors() {
        assert_eq!(Json::Number(3.0).as_u64(), Some(3));
        assert_eq!(Json::Number(3.5).as_u64(), None);
        assert_eq!(Json::Number(-1.0).as_u64(), None);
        assert_eq!(Json::Number(0.25).as_f64(), Some(0.25));
        assert_eq!(Json::Bool(true).as_u64(), None);
    }

    #[test]
    fn render_parse_round_trip() {
        let v = object([
            (
                "rules",
                Json::Array(vec![object([
                    ("rule", Json::from("{1} => {2}")),
                    ("confidence", Json::from(0.75)),
                ])]),
            ),
            ("count", Json::from(1u64)),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }
}
