//! Request routing and endpoint handlers.
//!
//! The API surface (all JSON unless noted):
//!
//! * `POST /v1/units` — ingest one time unit. Body:
//!   `{"transactions": [[item ids...], ...]}`. Returns `202` with the
//!   unit's sequence number, `503` when the ingest queue is full (or
//!   while boot recovery runs), or — with `?wait=true` — `200` once the
//!   unit is applied to the miner. The body may also be a top-level JSON
//!   *array* of such objects: the batch is accepted with one WAL append
//!   and one queue pass, and the response carries per-unit accounting
//!   (`202` if at least one unit was accepted, else `503`).
//! * `GET /v1/rules` — the current cyclic rules. Query parameters
//!   `length`, `offset` (cycle filters) and `min_confidence` (stricter
//!   per-unit confidence; must be ≥ the configured threshold to have an
//!   effect). `409` while the window holds fewer units than `l_max`.
//!   Responses are served from an epoch-keyed body cache invalidated on
//!   every apply — repeated polls with the same parameters between
//!   ingests cost one mutex and one body clone, no miner lock.
//! * `GET /v1/items` — per-item support totals over the retained
//!   window, summed from the per-unit frequent-item lists the vertical
//!   counting kernel keeps. Shard workers expose this so the router can
//!   merge item supports across the cluster with a cheap integer sum.
//! * `GET /v1/health` — liveness and window occupancy.
//! * `GET /metrics` — Prometheus text exposition (not JSON).
//! * `GET /v1/debug/profile` — the car-obs span profile (per-span
//!   count / total / max nanoseconds) plus the global mining counters.
//! * `GET /v1/debug/events` — recent log events from the car-obs
//!   capture ring (bounded; oldest first).
//! * `GET /v1/debug/spans?trace_id=HEX` — every span this process still
//!   holds for one trace, from the car-trace finished-span ring. The
//!   bounded JSON side-channel behind the `X-Car-Spans` response
//!   header: the router (or an operator) can fetch spans the header
//!   truncated.
//! * `POST /v1/shutdown` — begin graceful shutdown.

use std::sync::Arc;
use std::time::{Duration, Instant};

use car_core::{CyclicRule, MinConfidence};
use car_itemset::ItemSet;

use crate::cache::RulesQueryKey;
use crate::http::{Request, Response};
use crate::json::{object, Json};
use crate::metrics::Route;
use crate::state::{AppState, EnqueueError};
use crate::sync::RwLockExt;

/// How long a `?wait=true` ingest will block for its unit to apply,
/// absent a tighter `X-Car-Deadline-Ms` budget from the caller.
const WAIT_APPLIED_TIMEOUT: Duration = Duration::from_secs(10);

/// The deadline a caller propagated via `X-Car-Deadline-Ms` (the shard
/// router stamps fan-out legs with their remaining budget), anchored at
/// handler entry. Absent or unparsable header ⇒ no deadline.
fn request_deadline(req: &Request) -> Option<Instant> {
    let ms: u64 = req.header("x-car-deadline-ms")?.trim().parse().ok()?;
    Some(Instant::now() + Duration::from_millis(ms))
}

/// The `504 deadline_exceeded` answer, with its resilience counter.
fn deadline_exceeded_response() -> Response {
    car_obs::counters::RESILIENCE.add_deadline_exceeded();
    Response::error(504, "deadline_exceeded")
}

/// How long a `?wait=true` ingest may block: the default cap, shrunk to
/// whatever remains of the caller's deadline.
fn wait_budget(deadline: Option<Instant>) -> Duration {
    match deadline {
        None => WAIT_APPLIED_TIMEOUT,
        Some(d) => WAIT_APPLIED_TIMEOUT.min(d.saturating_duration_since(Instant::now())),
    }
}

/// Item ids above this are rejected — the vocabulary is `u32`.
const MAX_ITEM_ID: u64 = u32::MAX as u64;

/// Dispatches a request, returning the route (for metrics) and the
/// response.
pub fn handle(state: &Arc<AppState>, req: &Request) -> (Route, Response) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/units") => (Route::IngestUnits, ingest_units(state, req)),
        ("GET", "/v1/rules") => (Route::Rules, get_rules(state, req)),
        ("GET", "/v1/items") => (Route::Items, get_items(state, req)),
        ("GET", "/v1/health") => (Route::Health, health(state)),
        ("GET", "/metrics") => (Route::Metrics, metrics(state)),
        ("GET", "/v1/debug/profile") => (Route::DebugProfile, debug_profile(state)),
        ("GET", "/v1/debug/events") => (Route::DebugEvents, debug_events()),
        ("GET", "/v1/debug/spans") => (Route::DebugSpans, debug_spans(req)),
        ("POST", "/v1/shutdown") => (Route::Shutdown, shutdown(state)),
        (
            _,
            "/v1/units" | "/v1/rules" | "/v1/items" | "/v1/health" | "/metrics"
            | "/v1/shutdown" | "/v1/debug/profile" | "/v1/debug/events"
            | "/v1/debug/spans",
        ) => (Route::Other, Response::error(405, "method not allowed")),
        _ => (Route::Other, Response::error(404, "no such endpoint")),
    }
}

/// Maps an enqueue rejection to its HTTP response, recording metrics.
fn enqueue_error_response(state: &Arc<AppState>, e: EnqueueError) -> Response {
    match e {
        EnqueueError::Full => {
            state.metrics.record_ingest_rejected();
            Response::error(503, "ingest queue full; retry later")
        }
        EnqueueError::ShuttingDown => Response::error(503, "server is shutting down"),
        EnqueueError::Recovering => {
            Response::error(503, "recovering the window from disk; retry later")
        }
        EnqueueError::Persistence => Response::error(
            503,
            "durability failure: the write-ahead log cannot accept units",
        ),
    }
}

fn ingest_units(state: &Arc<AppState>, req: &Request) -> Response {
    let (units, is_batch) = match parse_units_body(&req.body) {
        Ok(parsed) => parsed,
        Err(msg) => return Response::error(400, &msg),
    };
    if is_batch {
        return ingest_batch(state, req, units);
    }
    let Some(unit) = units.into_iter().next() else {
        return Response::error(400, "empty unit batch");
    };
    let num_transactions = unit.len() as u64;
    let seq = match state.ingest_unit(unit) {
        Ok(seq) => seq,
        Err(e) => return enqueue_error_response(state, e),
    };
    state.metrics.record_ingest(num_transactions);

    let wait = matches!(req.query_param("wait"), Some("true" | "1"));
    if wait {
        if !state.wait_applied(seq, wait_budget(request_deadline(req))) {
            return Response::error(503, "timed out waiting for unit to apply");
        }
        let miner = state.miner.read_or_recover();
        return Response::json(
            200,
            &object([
                ("unit_seq", Json::from(seq)),
                ("applied", Json::from(true)),
                ("units_retained", Json::from(miner.len())),
                ("total_pushed", Json::from(miner.total_pushed())),
            ]),
        );
    }
    Response::json(
        202,
        &object([
            ("unit_seq", Json::from(seq)),
            ("applied", Json::from(false)),
            ("queue_depth", Json::from(state.queue.depth())),
        ]),
    )
}

/// Handles a top-level-array body: one WAL append + one queue pass for
/// the whole batch, per-unit accounting in the response.
fn ingest_batch(
    state: &Arc<AppState>,
    req: &Request,
    units: Vec<Vec<ItemSet>>,
) -> Response {
    if units.is_empty() {
        return Response::error(400, "empty unit batch");
    }
    let tx_counts: Vec<u64> = units.iter().map(|u| u.len() as u64).collect();
    let results = state.ingest_batch(units);

    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut last_seq = None;
    let mut per_unit = Vec::with_capacity(results.len());
    for (result, txs) in results.iter().zip(&tx_counts) {
        match result {
            Ok(seq) => {
                state.metrics.record_ingest(*txs);
                accepted += 1;
                last_seq = Some(*seq);
                per_unit.push(object([
                    ("status", Json::from(202u64)),
                    ("unit_seq", Json::from(*seq)),
                ]));
            }
            Err(e) => {
                if *e == EnqueueError::Full {
                    state.metrics.record_ingest_rejected();
                }
                rejected += 1;
                per_unit.push(object([
                    ("status", Json::from(503u64)),
                    ("error", Json::from(enqueue_error_label(*e))),
                ]));
            }
        }
    }

    let wait = matches!(req.query_param("wait"), Some("true" | "1"));
    let mut applied = false;
    if wait {
        if let Some(seq) = last_seq {
            applied = state.wait_applied(seq, wait_budget(request_deadline(req)));
        }
    }
    let status = if accepted > 0 { 202 } else { 503 };
    Response::json(
        status,
        &object([
            ("accepted", Json::from(accepted)),
            ("rejected", Json::from(rejected)),
            ("applied", Json::from(applied)),
            ("units", Json::Array(per_unit)),
            ("queue_depth", Json::from(state.queue.depth())),
        ]),
    )
}

fn enqueue_error_label(e: EnqueueError) -> &'static str {
    match e {
        EnqueueError::Full => "queue_full",
        EnqueueError::ShuttingDown => "shutting_down",
        EnqueueError::Recovering => "recovering",
        EnqueueError::Persistence => "persistence_failure",
    }
}

/// Parses the ingest body: either `{"transactions": [[id, ...], ...]}`
/// (one unit) or a top-level array of such objects (a batch). Returns
/// the units and whether the body was the batch form.
///
/// Public so the `car shard` router can parse an ingest body once and
/// re-split it per shard using the same grammar the workers enforce.
///
/// # Errors
///
/// A human-readable message describing the first malformed element.
pub fn parse_units_body(body: &[u8]) -> Result<(Vec<Vec<ItemSet>>, bool), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    if let Some(batch) = doc.as_array() {
        let mut units = Vec::with_capacity(batch.len());
        for (i, entry) in batch.iter().enumerate() {
            units
                .push(parse_unit(entry).map_err(|msg| format!("batch unit {i}: {msg}"))?);
        }
        return Ok((units, true));
    }
    Ok((vec![parse_unit(&doc)?], false))
}

/// Parses one `{"transactions": [[id, ...], ...]}` object into a unit.
///
/// # Errors
///
/// A human-readable message describing the first malformed transaction.
pub fn parse_unit(doc: &Json) -> Result<Vec<ItemSet>, String> {
    let transactions = doc
        .get("transactions")
        .and_then(Json::as_array)
        .ok_or("body must be an object with a `transactions` array")?;
    let mut unit = Vec::with_capacity(transactions.len());
    for (i, tx) in transactions.iter().enumerate() {
        let items = tx
            .as_array()
            .ok_or_else(|| format!("transaction {i} must be an array of item ids"))?;
        let mut ids = Vec::with_capacity(items.len());
        for item in items {
            let id = item.as_u64().filter(|&id| id <= MAX_ITEM_ID).ok_or_else(|| {
                format!("transaction {i} has an invalid item id (need 0..=2^32-1)")
            })?;
            ids.push(id as u32);
        }
        unit.push(ItemSet::from_ids(ids));
    }
    Ok(unit)
}

fn get_rules(state: &Arc<AppState>, req: &Request) -> Response {
    let deadline = request_deadline(req);
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return deadline_exceeded_response();
    }
    if state.recovery.is_recovering() {
        return Response::error(
            503,
            "recovering the window from disk; rules are not yet consistent",
        );
    }
    let length = match parse_u32_param(req, "length") {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let offset = match parse_u32_param(req, "offset") {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let min_confidence = match req.query_param("min_confidence") {
        None => None,
        Some(raw) => match raw.parse::<f64>().ok().and_then(MinConfidence::new) {
            Some(q) => Some(q),
            None => {
                return Response::error(
                    400,
                    &format!("invalid min_confidence `{raw}` (need 0..=1)"),
                )
            }
        },
    };
    if let Some(q) = min_confidence {
        if q.value() < state.config.min_confidence.value() {
            return Response::error(
                400,
                &format!(
                    "min_confidence {} is below the mining threshold {}; \
                     rules under the threshold are not retained",
                    q.value(),
                    state.config.min_confidence.value()
                ),
            );
        }
    }

    // Epoch-keyed body cache: a hit skips the miner lock entirely.
    let key = RulesQueryKey {
        min_confidence_bits: min_confidence.map(|q| q.value().to_bits()),
        length,
        offset,
    };
    if let Some(body) = state.query_cache.lookup(&key) {
        state.metrics.record_query_cache_hit();
        car_obs::trace::annotate("cache", "hit");
        return rules_response(state, state.query_cache.epoch(), body.as_ref().clone());
    }
    state.metrics.record_query_cache_miss();
    car_obs::trace::annotate("cache", "miss");

    let miner = state.miner.read_or_recover();
    let rules = match miner.query_rules_within(min_confidence, deadline) {
        Ok(Some(rules)) => rules,
        Ok(None) => return deadline_exceeded_response(),
        Err(e) => return Response::error(409, &e.to_string()),
    };
    let units_retained = miner.len();
    let window = miner.window();
    // The epoch this body belongs to, read under the same lock as the
    // rules; the insert below is discarded if an apply raced us.
    let epoch = miner.total_pushed();
    drop(miner);

    let filtered: Vec<Json> =
        rules.iter().filter_map(|r| rule_to_json(r, length, offset)).collect();
    let body = object([
        ("units_retained", Json::from(units_retained)),
        ("window", Json::from(window)),
        ("count", Json::from(filtered.len())),
        ("rules", Json::Array(filtered)),
    ])
    .render()
    .into_bytes();
    let shared = std::sync::Arc::new(body);
    state.query_cache.insert(epoch, key, std::sync::Arc::clone(&shared));
    rules_response(state, epoch, shared.as_ref().clone())
}

fn get_items(state: &Arc<AppState>, req: &Request) -> Response {
    let deadline = request_deadline(req);
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return deadline_exceeded_response();
    }
    if state.recovery.is_recovering() {
        return Response::error(
            503,
            "recovering the window from disk; item supports are not yet consistent",
        );
    }
    let miner = state.miner.read_or_recover();
    let supports = miner.item_supports();
    let units_retained = miner.len();
    let window = miner.window();
    let epoch = miner.total_pushed();
    drop(miner);

    let items: Vec<Json> = supports
        .iter()
        .map(|(id, support)| {
            object([("id", Json::from(*id)), ("support", Json::from(*support))])
        })
        .collect();
    let body = object([
        ("units_retained", Json::from(units_retained)),
        ("window", Json::from(window)),
        ("count", Json::from(items.len())),
        ("items", Json::Array(items)),
    ])
    .render()
    .into_bytes();
    rules_response(state, epoch, body)
}

/// Wraps a rendered rules body with the cluster-facing headers:
/// `X-Car-Epoch` (units pushed when the body was rendered, so the
/// router can report view freshness) and — on shard workers —
/// `X-Car-Shard-Id`.
fn rules_response(state: &Arc<AppState>, epoch: u64, body: Vec<u8>) -> Response {
    let mut resp =
        Response::json_bytes(200, body).with_header("x-car-epoch", epoch.to_string());
    if let Some(shard) = state.shard {
        resp = resp.with_header("x-car-shard-id", shard.shard_id.to_string());
    }
    resp
}

/// Renders one rule, keeping only cycles matching the filters; a rule
/// with no matching cycle is dropped entirely.
///
/// Public so the `car shard` router renders merged rules through the
/// exact same serializer a single node uses — merged responses are
/// byte-identical to standalone ones, rule for rule.
pub fn rule_to_json(
    rule: &CyclicRule,
    length: Option<u32>,
    offset: Option<u32>,
) -> Option<Json> {
    let cycles: Vec<Json> = rule
        .cycles
        .iter()
        .filter(|c| length.map_or(true, |l| c.length() == l))
        .filter(|c| offset.map_or(true, |o| c.offset() == o))
        .map(|c| {
            object([
                ("length", Json::from(c.length())),
                ("offset", Json::from(c.offset())),
            ])
        })
        .collect();
    if cycles.is_empty() {
        return None;
    }
    let ids = |set: &ItemSet| {
        Json::Array(set.iter().map(|item| Json::from(item.id())).collect())
    };
    Some(object([
        ("rule", Json::from(rule.rule.to_string())),
        ("antecedent", ids(&rule.rule.antecedent)),
        ("consequent", ids(&rule.rule.consequent)),
        ("cycles", Json::Array(cycles)),
    ]))
}

fn parse_u32_param(req: &Request, name: &str) -> Result<Option<u32>, Response> {
    match req.query_param(name) {
        None => Ok(None),
        Some(raw) => raw.parse::<u32>().map(Some).map_err(|_| {
            Response::error(400, &format!("invalid {name} `{raw}` (need a u32)"))
        }),
    }
}

fn health(state: &Arc<AppState>) -> Response {
    // Read the queue depth before taking the miner lock: queue.depth()
    // locks the queue internally, and nothing may acquire `inner` while
    // holding `miner` (lock order is inner-free under miner).
    let queue_depth = state.queue.depth();
    let recovering = state.recovery.is_recovering();
    let miner = state.miner.read_or_recover();
    let warming_up = miner.len() < state.config.cycle_bounds.l_max() as usize;
    let status = if recovering {
        "recovering"
    } else if state.is_shutting_down() {
        "shutting_down"
    } else {
        "ok"
    };
    let ready = !recovering && !state.is_shutting_down();
    let mut fields: Vec<(String, Json)> = vec![
        ("status".into(), Json::from(status)),
        ("ready".into(), Json::from(ready)),
        ("warming_up".into(), Json::from(warming_up)),
        ("units_retained".into(), Json::from(miner.len())),
        ("window".into(), Json::from(miner.window())),
        ("total_pushed".into(), Json::from(miner.total_pushed())),
        ("evictions".into(), Json::from(miner.evictions())),
        ("queue_depth".into(), Json::from(queue_depth)),
    ];
    // Cluster identity: real values on shard workers, explicit nulls
    // standalone so clients need no presence check.
    let (shard_id, shard_count) = match state.shard {
        Some(s) => {
            (Json::from(u64::from(s.shard_id)), Json::from(u64::from(s.shard_count)))
        }
        None => (Json::Null, Json::Null),
    };
    fields.push(("shard_id".into(), shard_id));
    fields.push(("shard_count".into(), shard_count));
    if state.persist.is_some() {
        fields.push((
            "recovery".into(),
            object([
                ("complete", Json::from(!recovering)),
                ("snapshot_units", Json::from(state.recovery.snapshot_units())),
                ("replayed_units", Json::from(state.recovery.replayed_units())),
                ("truncated_records", Json::from(state.metrics.recovery_truncated())),
            ]),
        ));
    }
    Response::json(200, &Json::Object(fields))
}

fn metrics(state: &Arc<AppState>) -> Response {
    let (retained_units, evictions, rule_entries, rules_current, rules_tracked) = {
        let miner = state.miner.read_or_recover();
        let rules_current = miner.current_rules().map(|r| r.len()).unwrap_or(0);
        (
            miner.len(),
            miner.evictions(),
            miner.retained_rule_entries(),
            rules_current,
            miner.tracked_rules(),
        )
    };
    let text = state.metrics.render_prometheus(&[
        (
            "car_ingest_queue_depth",
            "Units waiting in the ingest queue.",
            state.queue.depth() as f64,
        ),
        (
            "car_window_units_retained",
            "Time units currently retained in the sliding window.",
            retained_units as f64,
        ),
        (
            "car_window_evictions_total",
            "Units evicted from the sliding window.",
            evictions as f64,
        ),
        (
            "car_rules_held_entries",
            "Per-unit rule hold entries retained in the window.",
            rule_entries as f64,
        ),
        (
            "car_rules_current",
            "Cyclic rules over the retained window (0 while warming up).",
            rules_current as f64,
        ),
        (
            "car_rules_tracked",
            "Distinct rules with online cycle state in the window miner.",
            rules_tracked as f64,
        ),
        (
            "car_query_cache_entries",
            "Rendered rule bodies cached for the current window epoch.",
            state.query_cache.len() as f64,
        ),
    ]);
    Response::text(200, text)
}

/// `GET /v1/debug/profile`: the car-obs flat span profile, the
/// process-global mining counters, and the query-cache state, as JSON.
fn debug_profile(state: &Arc<AppState>) -> Response {
    let spans: Vec<Json> = car_obs::profile_snapshot()
        .into_iter()
        .map(|s| {
            object([
                ("name", Json::from(s.name)),
                ("count", Json::from(s.count)),
                ("total_ns", Json::from(s.total_ns)),
                ("max_ns", Json::from(s.max_ns)),
            ])
        })
        .collect();
    let mine = car_obs::counters::MINE.snapshot();
    Response::json(
        200,
        &object([
            ("spans_enabled", Json::from(car_obs::spans_enabled())),
            ("spans", Json::Array(spans)),
            (
                "mine",
                object([
                    ("runs", Json::from(mine.runs)),
                    ("candidates_generated", Json::from(mine.candidates_generated)),
                    ("candidates_pruned", Json::from(mine.candidates_pruned)),
                    ("unit_counts_skipped", Json::from(mine.unit_counts_skipped)),
                    ("cycles_eliminated", Json::from(mine.cycles_eliminated)),
                    ("support_computations", Json::from(mine.support_computations)),
                    ("detect_eliminations", Json::from(mine.detect_eliminations)),
                    ("online_holds", Json::from(mine.online_holds)),
                    ("online_eliminations", Json::from(mine.online_eliminations)),
                ]),
            ),
            (
                "query_cache",
                object([
                    ("epoch", Json::from(state.query_cache.epoch())),
                    ("entries", Json::from(state.query_cache.len())),
                    ("hits", Json::from(state.metrics.query_cache_hits())),
                    ("misses", Json::from(state.metrics.query_cache_misses())),
                ]),
            ),
        ]),
    )
}

/// `GET /v1/debug/events`: the ring-buffered recent log events.
fn debug_events() -> Response {
    let events: Vec<Json> = car_obs::recent_events()
        .into_iter()
        .map(|e| {
            let fields: Vec<(String, Json)> =
                e.fields.into_iter().map(|(k, v)| (k, Json::from(v))).collect();
            object([
                ("ts_us", Json::from(e.ts_us)),
                ("level", Json::from(e.level.as_str())),
                ("target", Json::from(e.target)),
                ("message", Json::from(e.message)),
                ("fields", Json::Object(fields)),
            ])
        })
        .collect();
    Response::json(
        200,
        &object([("count", Json::from(events.len())), ("events", Json::Array(events))]),
    )
}

/// Renders one trace span as JSON.
///
/// Public so the `car shard` router renders assembled trace trees
/// through the same serializer a worker's `/v1/debug/spans` uses —
/// a span looks identical whether read raw or inside a tree.
pub fn span_to_json(span: &car_obs::trace::SpanRecord) -> Json {
    let attrs: Vec<(String, Json)> =
        span.attrs.iter().map(|(k, v)| (k.clone(), Json::from(v.as_str()))).collect();
    object([
        ("uid", Json::from(span.uid.to_hex())),
        ("parent", span.parent.map_or(Json::Null, |p| Json::from(p.to_hex()))),
        ("name", Json::from(span.name.as_str())),
        ("start_us", Json::from(span.start_us)),
        ("dur_us", Json::from(span.dur_us)),
        ("attrs", Json::Object(attrs)),
    ])
}

/// `GET /v1/debug/spans?trace_id=HEX`: the spans this process still
/// retains for one trace, oldest first. The side-channel the router
/// uses when a response's `X-Car-Spans` header had to truncate.
fn debug_spans(req: &Request) -> Response {
    let Some(raw) = req.query_param("trace_id") else {
        return Response::error(400, "missing trace_id query parameter");
    };
    let Some(trace_id) = car_obs::trace::TraceId::from_hex(raw) else {
        return Response::error(
            400,
            "invalid trace_id (need 32 lowercase hex digits, non-zero)",
        );
    };
    let spans = car_obs::trace::spans_for_trace(trace_id);
    let rendered: Vec<Json> = spans.iter().map(span_to_json).collect();
    Response::json(
        200,
        &object([
            ("trace_id", Json::from(trace_id.to_hex())),
            ("count", Json::from(rendered.len())),
            ("spans", Json::Array(rendered)),
        ]),
    )
}

fn shutdown(state: &Arc<AppState>) -> Response {
    state.begin_shutdown();
    Response::json(200, &object([("status", Json::from("shutting_down"))])).with_close()
}

#[cfg(test)]
mod tests {
    use super::*;
    use car_core::MiningConfig;

    fn test_state() -> Arc<AppState> {
        let config = MiningConfig::builder()
            .min_support_fraction(0.5)
            .min_confidence(0.5)
            .cycle_bounds(2, 2)
            .build()
            .unwrap();
        AppState::new(config, 4, 8, None).unwrap()
    }

    fn request(method: &str, path: &str, query: &[(&str, &str)], body: &[u8]) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            query: query.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            headers: Vec::new(),
            body: body.to_vec(),
        }
    }

    #[test]
    fn unknown_path_is_404_and_wrong_method_is_405() {
        let state = test_state();
        let (_, resp) = handle(&state, &request("GET", "/nope", &[], b""));
        assert_eq!(resp.status, 404);
        let (_, resp) = handle(&state, &request("DELETE", "/v1/rules", &[], b""));
        assert_eq!(resp.status, 405);
        let (_, resp) = handle(&state, &request("GET", "/v1/units", &[], b""));
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn ingest_validates_body() {
        let state = test_state();
        for bad in [
            b"not json".as_slice(),
            b"{}",
            b"{\"transactions\": 3}",
            b"{\"transactions\": [3]}",
            b"{\"transactions\": [[-1]]}",
            b"{\"transactions\": [[1.5]]}",
            b"{\"transactions\": [[99999999999]]}",
        ] {
            let (_, resp) = handle(&state, &request("POST", "/v1/units", &[], bad));
            assert_eq!(resp.status, 400, "{}", String::from_utf8_lossy(bad));
        }
    }

    #[test]
    fn ingest_accepts_and_applies_backpressure() {
        let state = test_state();
        let body = br#"{"transactions": [[1, 2], [1, 2], [3]]}"#;
        for expected in 1..=8u64 {
            let (_, resp) = handle(&state, &request("POST", "/v1/units", &[], body));
            assert_eq!(resp.status, 202);
            let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
            assert_eq!(doc.get("unit_seq").and_then(Json::as_u64), Some(expected));
        }
        // Queue capacity is 8 and no worker is draining: the 9th is shed.
        let (_, resp) = handle(&state, &request("POST", "/v1/units", &[], body));
        assert_eq!(resp.status, 503);
        assert_eq!(state.metrics.units_ingested(), 8);
    }

    #[test]
    fn rules_rejects_bad_params_and_warming_window() {
        let state = test_state();
        let (_, resp) =
            handle(&state, &request("GET", "/v1/rules", &[("length", "banana")], b""));
        assert_eq!(resp.status, 400);
        let (_, resp) = handle(
            &state,
            &request("GET", "/v1/rules", &[("min_confidence", "1.5")], b""),
        );
        assert_eq!(resp.status, 400);
        // Below the mining threshold: cannot be answered from cached rules.
        let (_, resp) = handle(
            &state,
            &request("GET", "/v1/rules", &[("min_confidence", "0.2")], b""),
        );
        assert_eq!(resp.status, 400);
        // Empty window: 409 until l_max units have arrived.
        let (_, resp) = handle(&state, &request("GET", "/v1/rules", &[], b""));
        assert_eq!(resp.status, 409);
    }

    #[test]
    fn ingest_rules_round_trip_with_filters() {
        let state = test_state();
        let worker = crate::state::spawn_ingest_worker(Arc::clone(&state)).unwrap();
        let even = br#"{"transactions": [[1, 2], [1, 2], [1, 2], [1, 2]]}"#;
        let odd = br#"{"transactions": [[9], [9], [9], [9]]}"#;
        for day in 0..6 {
            let body: &[u8] = if day % 2 == 0 { even } else { odd };
            let (_, resp) =
                handle(&state, &request("POST", "/v1/units", &[("wait", "true")], body));
            assert_eq!(resp.status, 200);
        }
        let (_, resp) = handle(&state, &request("GET", "/v1/rules", &[], b""));
        assert_eq!(resp.status, 200);
        let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let rules = doc.get("rules").and_then(Json::as_array).unwrap();
        assert!(rules.iter().any(|r| {
            r.get("rule").and_then(Json::as_str) == Some("{1} => {2}")
                && r.get("cycles").and_then(Json::as_array).is_some_and(|cs| {
                    cs.iter().any(|c| {
                        c.get("length").and_then(Json::as_u64) == Some(2)
                            && c.get("offset").and_then(Json::as_u64) == Some(0)
                    })
                })
        }));
        // Offset 1 holds the odd-day side; {1} => {2} must disappear.
        let (_, resp) =
            handle(&state, &request("GET", "/v1/rules", &[("offset", "1")], b""));
        let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let rules = doc.get("rules").and_then(Json::as_array).unwrap();
        assert!(rules
            .iter()
            .all(|r| r.get("rule").and_then(Json::as_str) != Some("{1} => {2}")));
        state.begin_shutdown();
        worker.join().unwrap();
    }

    #[test]
    fn items_route_reports_window_supports() {
        let state = test_state();
        let worker = crate::state::spawn_ingest_worker(Arc::clone(&state)).unwrap();
        // An empty window answers 200 with zero items (unlike /v1/rules,
        // there is no l_max warm-up requirement for raw item supports).
        let (_, resp) = handle(&state, &request("GET", "/v1/items", &[], b""));
        assert_eq!(resp.status, 200);
        let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("count").and_then(Json::as_u64), Some(0));

        let body = br#"{"transactions": [[1, 2], [1, 2], [1, 2], [7]]}"#;
        for _ in 0..2 {
            let (_, resp) =
                handle(&state, &request("POST", "/v1/units", &[("wait", "true")], body));
            assert_eq!(resp.status, 200);
        }
        let (route, resp) = handle(&state, &request("GET", "/v1/items", &[], b""));
        assert_eq!(route, Route::Items);
        assert_eq!(resp.status, 200);
        assert!(resp.extra_headers.iter().any(|(k, v)| k == "x-car-epoch" && v == "2"));
        let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("units_retained").and_then(Json::as_u64), Some(2));
        let items = doc.get("items").and_then(Json::as_array).unwrap();
        let support = |id: u64| {
            items
                .iter()
                .find(|e| e.get("id").and_then(Json::as_u64) == Some(id))
                .and_then(|e| e.get("support").and_then(Json::as_u64))
        };
        // Items 1 and 2 are frequent in both units (3+3); item 7 appears
        // once per unit and — with min support 0.5 of 4 transactions —
        // falls below the per-unit threshold, so it is not retained.
        assert_eq!(support(1), Some(6));
        assert_eq!(support(2), Some(6));
        assert_eq!(support(7), None);
        // Sorted by item id for deterministic merge at the router.
        let ids: Vec<u64> =
            items.iter().filter_map(|e| e.get("id").and_then(Json::as_u64)).collect();
        let mut sorted_ids = ids.clone();
        sorted_ids.sort_unstable();
        assert_eq!(ids, sorted_ids);
        // Wrong method on the path is 405, not 404.
        let (_, resp) = handle(&state, &request("POST", "/v1/items", &[], b""));
        assert_eq!(resp.status, 405);
        state.begin_shutdown();
        worker.join().unwrap();
    }

    #[test]
    fn rules_cache_hits_within_epoch_and_never_serves_stale_after_ingest() {
        let state = test_state();
        let worker = crate::state::spawn_ingest_worker(Arc::clone(&state)).unwrap();
        let even = br#"{"transactions": [[1, 2], [1, 2], [1, 2], [1, 2]]}"#;
        let odd = br#"{"transactions": [[9], [9], [9], [9]]}"#;
        for day in 0..4 {
            let body: &[u8] = if day % 2 == 0 { even } else { odd };
            let (_, resp) =
                handle(&state, &request("POST", "/v1/units", &[("wait", "true")], body));
            assert_eq!(resp.status, 200);
        }
        // First query misses, second identical query hits with the same
        // bytes and without touching the miner.
        let (_, first) = handle(&state, &request("GET", "/v1/rules", &[], b""));
        assert_eq!(first.status, 200);
        assert_eq!(state.metrics.query_cache_misses(), 1);
        let (_, second) = handle(&state, &request("GET", "/v1/rules", &[], b""));
        assert_eq!(second.body, first.body);
        assert_eq!(state.metrics.query_cache_hits(), 1);
        // Distinct parameters are distinct cache entries.
        let (_, filtered) =
            handle(&state, &request("GET", "/v1/rules", &[("offset", "1")], b""));
        assert_eq!(filtered.status, 200);
        assert_eq!(state.metrics.query_cache_misses(), 2);
        assert_eq!(state.query_cache.len(), 2);

        // Ingest one more unit (observed applied): the next query must
        // reflect the new epoch, not the cached pre-apply body.
        let (_, resp) =
            handle(&state, &request("POST", "/v1/units", &[("wait", "true")], even));
        assert_eq!(resp.status, 200);
        assert_eq!(state.query_cache.len(), 0, "apply must clear the cache");
        let (_, third) = handle(&state, &request("GET", "/v1/rules", &[], b""));
        assert_eq!(third.status, 200);
        let doc = Json::parse(std::str::from_utf8(&third.body).unwrap()).unwrap();
        assert_eq!(doc.get("units_retained").and_then(Json::as_u64), Some(4));
        assert_ne!(third.body, first.body, "stale epoch body must not be served");
        state.begin_shutdown();
        worker.join().unwrap();
    }

    #[test]
    fn health_and_metrics_render() {
        let state = test_state();
        let (_, resp) = handle(&state, &request("GET", "/v1/health", &[], b""));
        assert_eq!(resp.status, 200);
        let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(doc.get("warming_up").and_then(Json::as_bool), Some(true));

        let (_, resp) = handle(&state, &request("GET", "/metrics", &[], b""));
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("car_ingest_queue_depth 0"));
        assert!(text.contains("car_rules_current 0"));
        assert!(text.contains("# TYPE car_http_requests_total counter"));
    }

    #[test]
    fn debug_profile_reports_spans_and_mine_counters() {
        let state = test_state();
        car_obs::set_spans_enabled(true);
        {
            let _span = car_obs::time_span!("test.routes.debug");
        }
        car_obs::set_spans_enabled(false);
        let (route, resp) =
            handle(&state, &request("GET", "/v1/debug/profile", &[], b""));
        assert_eq!(route, Route::DebugProfile);
        assert_eq!(resp.status, 200);
        let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let spans = doc.get("spans").and_then(Json::as_array).unwrap();
        assert!(spans.iter().any(|s| {
            s.get("name").and_then(Json::as_str) == Some("test.routes.debug")
                && s.get("count").and_then(Json::as_u64).is_some_and(|c| c >= 1)
        }));
        let mine = doc.get("mine").unwrap();
        for key in
            ["candidates_pruned", "unit_counts_skipped", "cycles_eliminated", "runs"]
        {
            assert!(mine.get(key).and_then(Json::as_u64).is_some(), "missing {key}");
        }
        // Wrong method is 405, like every other endpoint.
        let (_, resp) = handle(&state, &request("POST", "/v1/debug/profile", &[], b""));
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn debug_events_returns_captured_ring() {
        let state = test_state();
        car_obs::set_capture(true);
        car_obs::warn!("serve", [probe = 41], "debug-events route test event");
        let (route, resp) = handle(&state, &request("GET", "/v1/debug/events", &[], b""));
        car_obs::set_capture(false);
        assert_eq!(route, Route::DebugEvents);
        assert_eq!(resp.status, 200);
        let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let events = doc.get("events").and_then(Json::as_array).unwrap();
        assert!(events.iter().any(|e| {
            e.get("message").and_then(Json::as_str)
                == Some("debug-events route test event")
                && e.get("fields").and_then(|f| f.get("probe")).and_then(Json::as_str)
                    == Some("41")
                && e.get("level").and_then(Json::as_str) == Some("warn")
        }));
    }

    #[test]
    fn health_reports_null_shard_identity_standalone() {
        let state = test_state();
        let (_, resp) = handle(&state, &request("GET", "/v1/health", &[], b""));
        let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("shard_id"), Some(&Json::Null));
        assert_eq!(doc.get("shard_count"), Some(&Json::Null));
    }

    #[test]
    fn health_reports_shard_identity_on_workers() {
        let config = MiningConfig::builder()
            .min_support_fraction(0.5)
            .min_confidence(0.5)
            .cycle_bounds(2, 2)
            .build()
            .unwrap();
        let state = AppState::new_with_shard(
            config,
            4,
            8,
            None,
            Some(crate::state::ShardIdentity { shard_id: 2, shard_count: 3 }),
        )
        .unwrap();
        let (_, resp) = handle(&state, &request("GET", "/v1/health", &[], b""));
        let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("shard_id").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("shard_count").and_then(Json::as_u64), Some(3));

        // Rule responses from a shard worker carry the shard id and the
        // epoch; the epoch also appears standalone (tested implicitly by
        // the absence of x-car-shard-id there).
        let even = br#"{"transactions": [[1, 2], [1, 2]]}"#;
        let odd = br#"{"transactions": [[9], [9]]}"#;
        let worker = crate::state::spawn_ingest_worker(Arc::clone(&state)).unwrap();
        for day in 0..4 {
            let body: &[u8] = if day % 2 == 0 { even } else { odd };
            let (_, resp) =
                handle(&state, &request("POST", "/v1/units", &[("wait", "true")], body));
            assert_eq!(resp.status, 200);
        }
        let (_, resp) = handle(&state, &request("GET", "/v1/rules", &[], b""));
        assert_eq!(resp.status, 200);
        let header = |name: &str| {
            resp.extra_headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
        };
        assert_eq!(header("x-car-epoch"), Some("4"));
        assert_eq!(header("x-car-shard-id"), Some("2"));
        state.begin_shutdown();
        worker.join().unwrap();
    }

    #[test]
    fn debug_spans_validates_trace_id_and_serves_published_spans() {
        let state = test_state();
        // Missing or hostile trace_id is a 400, never a 500.
        let (route, resp) = handle(&state, &request("GET", "/v1/debug/spans", &[], b""));
        assert_eq!(route, Route::DebugSpans);
        assert_eq!(resp.status, 400);
        for bad in ["", "zz", "DEADBEEF", "0".repeat(32).as_str(), "'; drop--"] {
            let (_, resp) = handle(
                &state,
                &request("GET", "/v1/debug/spans", &[("trace_id", bad)], b""),
            );
            assert_eq!(resp.status, 400, "trace_id {bad:?}");
        }
        // Wrong method is 405 like every other endpoint.
        let (_, resp) = handle(&state, &request("POST", "/v1/debug/spans", &[], b""));
        assert_eq!(resp.status, 405);

        // A published trace comes back through the side-channel.
        use car_obs::trace::{SpanRecord, SpanUid, TraceId};
        let trace_id =
            TraceId::from_hex(&format!("{:032x}", 0xfeed_f00d_u128)).expect("literal id");
        let uid =
            SpanUid::from_hex(&format!("{:016x}", 0xbeef_u64)).expect("literal uid");
        car_obs::trace::publish_spans(&[SpanRecord {
            trace_id,
            uid,
            parent: None,
            name: "routes.test.span".into(),
            start_us: 10,
            dur_us: 7,
            attrs: vec![("shard".into(), "1".into())],
        }]);
        let (_, resp) = handle(
            &state,
            &request(
                "GET",
                "/v1/debug/spans",
                &[("trace_id", trace_id.to_hex().as_str())],
                b"",
            ),
        );
        assert_eq!(resp.status, 200);
        let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(
            doc.get("trace_id").and_then(Json::as_str),
            Some(trace_id.to_hex().as_str())
        );
        let spans = doc.get("spans").and_then(Json::as_array).unwrap();
        assert!(spans.iter().any(|s| {
            s.get("name").and_then(Json::as_str) == Some("routes.test.span")
                && s.get("dur_us").and_then(Json::as_u64) == Some(7)
                && s.get("parent") == Some(&Json::Null)
                && s.get("attrs").and_then(|a| a.get("shard")).and_then(Json::as_str)
                    == Some("1")
        }));
    }

    #[test]
    fn shutdown_flips_state() {
        let state = test_state();
        let (_, resp) = handle(&state, &request("POST", "/v1/shutdown", &[], b""));
        assert_eq!(resp.status, 200);
        assert!(resp.close);
        assert!(state.is_shutting_down());
        let (_, resp) = handle(&state, &request("GET", "/v1/health", &[], b""));
        let doc = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("shutting_down"));
    }
}
