use std::fmt;
use std::io;

use car_core::ConfigError;

/// Why the daemon could not start or keep running.
#[derive(Debug)]
pub enum ServeError {
    /// The mining configuration or window was invalid.
    Config(ConfigError),
    /// Binding or socket setup failed.
    Io(io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(e) => write!(f, "invalid server configuration: {e}"),
            ServeError::Io(e) => write!(f, "server i/o error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Config(e) => Some(e),
            ServeError::Io(e) => Some(e),
        }
    }
}

impl From<ConfigError> for ServeError {
    fn from(e: ConfigError) -> Self {
        ServeError::Config(e)
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = ServeError::from(ConfigError::EmptyDatabase);
        assert!(e.to_string().contains("no time units"));
        let e = ServeError::from(io::Error::new(io::ErrorKind::AddrInUse, "busy"));
        assert!(e.to_string().contains("busy"));
    }
}
