//! The daemon itself: listener, connection loop, graceful shutdown.
//!
//! The accept loop runs on its own thread with a non-blocking listener,
//! polling a shutdown flag between accepts; each accepted connection is
//! handed to the worker [`ThreadPool`](crate::pool::ThreadPool), which
//! serves keep-alive requests until the client closes, an error occurs,
//! or shutdown begins. Shutdown (via `POST /v1/shutdown`, SIGINT, or
//! [`ServerHandle::trigger_shutdown`]) stops accepting, lets in-flight
//! requests drain (the pool join), drains the ingest queue into the
//! miner, and returns final statistics.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use car_core::MiningConfig;

use crate::http::{self, RequestLimits, Response, DEFAULT_MAX_BODY_BYTES};
use crate::metrics::Route;
use crate::routes;
use crate::state::{spawn_ingest_worker, AppState};
use crate::sync::{log_warn, RwLockExt};
use crate::ServeError;

/// How often the accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Requests served per connection before forcing a close (keeps a
/// single chatty client from pinning a worker forever).
const MAX_REQUESTS_PER_CONNECTION: usize = 10_000;

/// Everything needed to boot a daemon.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 for ephemeral).
    pub addr: String,
    /// Worker threads serving connections.
    pub threads: usize,
    /// Sliding-window length, in time units.
    pub window: usize,
    /// Ingest queue capacity (backpressure beyond this).
    pub queue_capacity: usize,
    /// The mining configuration.
    pub mining: MiningConfig,
    /// Per-connection socket read/write timeout.
    pub io_timeout: Duration,
    /// Maximum accepted request body size.
    pub max_body_bytes: usize,
    /// Budget for reading a request's head block, measured from its
    /// first byte (slow-loris defense). `None` disables the deadline.
    pub header_timeout: Option<Duration>,
    /// Connections served concurrently before the admission gate sheds
    /// new arrivals with `503 overloaded` + `Retry-After`. `0` disables
    /// shedding.
    pub max_inflight: usize,
    /// Install SIGINT/SIGTERM handlers and honour the process-wide
    /// signal flag. Off in tests (the flag is shared by the whole
    /// process), on in the CLI.
    pub handle_signals: bool,
    /// Durability configuration: data directory, fsync policy, snapshot
    /// cadence. `None` keeps the window memory-only (lost on restart).
    pub persist: Option<crate::persist::PersistConfig>,
    /// Cluster identity when this daemon runs as a shard worker under
    /// the `car shard` router; `None` for a standalone daemon.
    pub shard: Option<crate::state::ShardIdentity>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            threads: 4,
            window: 64,
            queue_capacity: 256,
            mining: MiningConfig::default(),
            io_timeout: Duration::from_secs(10),
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            header_timeout: Some(Duration::from_secs(5)),
            max_inflight: 128,
            handle_signals: false,
            persist: None,
            shard: None,
        }
    }
}

/// Final statistics reported when the daemon drains and exits.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FinalStats {
    /// HTTP requests served.
    pub requests: u64,
    /// Time units applied to the miner.
    pub units_ingested: u64,
    /// Units evicted from the window.
    pub evictions: u64,
    /// Units retained at shutdown.
    pub units_retained: usize,
    /// Seconds the daemon ran.
    pub uptime: Duration,
}

/// A running daemon.
pub struct ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub addr: SocketAddr,
    state: Arc<AppState>,
    accept_thread: JoinHandle<()>,
    ingest_thread: JoinHandle<()>,
    started: Instant,
}

impl ServerHandle {
    /// The shared state (tests and embedding callers).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Asks the daemon to shut down gracefully (idempotent).
    pub fn trigger_shutdown(&self) {
        self.state.begin_shutdown();
    }

    /// Blocks until the daemon has fully drained and exited, returning
    /// final statistics.
    pub fn wait(self) -> FinalStats {
        if self.accept_thread.join().is_err() {
            log_warn("accept thread panicked; final stats may undercount");
        }
        if self.ingest_thread.join().is_err() {
            log_warn("ingest thread panicked; final stats may undercount");
        }
        let miner = self.state.miner.read_or_recover();
        FinalStats {
            requests: self.state.metrics.total_requests(),
            units_ingested: self.state.metrics.units_ingested(),
            evictions: miner.evictions(),
            units_retained: miner.len(),
            uptime: self.started.elapsed(),
        }
    }
}

/// Binds the listener and spawns the daemon threads.
///
/// # Errors
///
/// [`ServeError::Config`] for an invalid mining configuration or window,
/// [`ServeError::Io`] when the address cannot be bound.
pub fn serve(config: ServerConfig) -> Result<ServerHandle, ServeError> {
    // Observability: honour CAR_LOG / CAR_LOG_FORMAT / CAR_SPANS, then
    // turn on span recording and event capture — the daemon serves them
    // back out through /metrics and the /v1/debug endpoints.
    car_obs::init_from_env();
    car_obs::set_spans_enabled(true);
    car_obs::set_capture(true);
    let state = AppState::new_with_shard(
        config.mining,
        config.window,
        config.queue_capacity,
        config.persist.clone(),
        config.shard,
    )?;
    let addrs: Vec<SocketAddr> =
        config.addr.to_socket_addrs().map_err(ServeError::Io)?.collect();
    let listener = TcpListener::bind(&addrs[..]).map_err(ServeError::Io)?;
    listener.set_nonblocking(true).map_err(ServeError::Io)?;
    let addr = listener.local_addr().map_err(ServeError::Io)?;

    if config.handle_signals {
        crate::shutdown::install_signal_handlers();
    }
    let ingest_thread =
        spawn_ingest_worker(Arc::clone(&state)).map_err(ServeError::Io)?;
    // Build the pool here, not in the accept loop, so a failed worker
    // spawn surfaces as a startup error instead of a panic mid-serve.
    let pool = crate::pool::ThreadPool::new(config.threads, "car-worker")
        .map_err(ServeError::Io)?;
    let accept_state = Arc::clone(&state);
    let policy = Arc::new(ConnPolicy {
        io_timeout: config.io_timeout,
        limits: RequestLimits {
            max_head_bytes: http::MAX_HEAD_BYTES,
            max_body_bytes: config.max_body_bytes,
            header_timeout: config.header_timeout,
        },
        max_inflight: config.max_inflight,
        inflight: AtomicUsize::new(0),
    });
    let handle_signals = config.handle_signals;
    let spawn_result =
        std::thread::Builder::new().name("car-accept".into()).spawn(move || {
            accept_loop(&listener, &accept_state, pool, &policy, handle_signals);
        });
    let accept_thread = match spawn_result {
        Ok(handle) => handle,
        Err(e) => {
            // Unwind the already-running applier before reporting the
            // startup failure, so no thread outlives the error.
            state.begin_shutdown();
            if ingest_thread.join().is_err() {
                log_warn("ingest thread panicked during startup unwind");
            }
            return Err(ServeError::Io(e));
        }
    };

    car_obs::info!(
        "serve",
        [addr = addr, threads = config.threads, window = config.window],
        "daemon listening"
    );
    Ok(ServerHandle {
        addr,
        state,
        accept_thread,
        ingest_thread,
        started: Instant::now(),
    })
}

/// Per-connection serving policy, shared by the accept loop and every
/// worker thread: socket timeouts, parse limits, and the bounded
/// in-flight admission gate.
struct ConnPolicy {
    io_timeout: Duration,
    limits: RequestLimits,
    /// Admission limit; `0` disables shedding.
    max_inflight: usize,
    /// Connections currently being served.
    inflight: AtomicUsize,
}

impl ConnPolicy {
    /// Tries to admit one connection; `false` means shed it.
    fn admit(&self) -> bool {
        if self.max_inflight == 0 {
            return true;
        }
        // Optimistic increment: over-admission by a racing accept is
        // impossible because there is a single accept thread.
        // audit:allow(a6-relaxed-control) reason="the single accept thread performs every load; a worker's release may lag one decision, which at worst sheds one connection early — the gate is a bound, not an invariant"
        if self.inflight.load(Ordering::Relaxed) >= self.max_inflight {
            return false;
        }
        self.inflight.fetch_add(1, Ordering::Relaxed);
        true
    }

    fn release(&self) {
        if self.max_inflight != 0 {
            self.inflight.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Releases an admitted connection's slot on drop (panic-safe).
struct InflightSlot<'a>(&'a ConnPolicy);

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// Sheds a connection the admission gate rejected: a one-shot `503`
/// with `Retry-After`, written from the accept thread (bounded by a
/// short write timeout so a dead peer cannot stall accepts).
fn shed_connection(mut stream: TcpStream) {
    car_obs::counters::RESILIENCE.add_shed();
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let mut writer = BufWriter::new(&mut stream);
    // audit:allow(a4-discard) reason="same shed path: the response is advisory and the connection is dropped either way"
    let _ = Response::error(503, "overloaded; connection limit reached")
        .with_header("retry-after", "1")
        .with_close()
        .write_to(&mut writer);
    drop(writer);
    // Half-close and briefly drain the request bytes we never read:
    // closing with unread data in the receive buffer sends an RST that
    // can destroy the in-flight 503 before the client reads it. The
    // short read timeout bounds how long a hostile peer can pin the
    // accept thread.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut scratch = [0u8; 1024];
    let mut drained = 0usize;
    while let Ok(n) = std::io::Read::read(&mut stream, &mut scratch) {
        if n == 0 {
            break;
        }
        drained += n;
        if drained >= 64 * 1024 {
            break;
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    state: &Arc<AppState>,
    pool: crate::pool::ThreadPool,
    policy: &Arc<ConnPolicy>,
    handle_signals: bool,
) {
    loop {
        if state.is_shutting_down() || (handle_signals && crate::shutdown::signalled()) {
            // A signal may arrive without anything having closed the
            // ingest queue yet.
            state.begin_shutdown();
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if !policy.admit() {
                    shed_connection(stream);
                    continue;
                }
                let state = Arc::clone(state);
                let policy = Arc::clone(policy);
                pool.execute(move || {
                    // Guard, not a trailing call: the slot must free
                    // even if a handler panics mid-connection.
                    let _slot = InflightSlot(&policy);
                    serve_connection(stream, &state, &policy);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                // Transient accept errors (e.g. ECONNABORTED): back off
                // briefly rather than spinning.
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
    // In-flight connections drain here; the ingest queue is closed, so
    // the ingest worker exits once it has applied everything accepted.
    pool.join();
}

/// Serves one connection until close, error, limit, or shutdown.
fn serve_connection(stream: TcpStream, state: &Arc<AppState>, policy: &ConnPolicy) {
    if stream.set_read_timeout(Some(policy.io_timeout)).is_err()
        || stream.set_write_timeout(Some(policy.io_timeout)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);

    for _ in 0..MAX_REQUESTS_PER_CONNECTION {
        let started = Instant::now();
        let request = match http::read_request_limited(&mut reader, &policy.limits) {
            Ok(request) => request,
            Err(http::ParseError::ConnectionClosed) => return,
            Err(e) => {
                state.metrics.record_parse_error();
                if matches!(e, http::ParseError::HeadTimeout) {
                    car_obs::counters::RESILIENCE.add_header_timeout();
                }
                let (status, _) = e.status();
                // audit:allow(a4-discard) reason="best-effort courtesy reply on a connection that already failed parsing; if the write also fails there is no one left to tell and the connection closes either way"
                let _ = Response::error(status, &e.to_string())
                    .with_close()
                    .write_to(&mut writer);
                // A parse failure is still a served request: record it
                // under the catch-all route so it appears in the request
                // totals and the latency histogram, not only in the
                // dedicated parse-error counter. An idle keep-alive
                // timeout is excluded — no request bytes ever arrived,
                // so there is no request to count.
                if !matches!(e, http::ParseError::Timeout) {
                    state.metrics.record_request(Route::Other, status, started.elapsed());
                    car_obs::debug!(
                        "serve",
                        [id = car_obs::next_request_id(), status = status],
                        "request rejected by the HTTP parser: {e}"
                    );
                }
                return;
            }
        };
        let request_id = car_obs::next_request_id();
        // The flat-profile span is created *before* the trace arms so it
        // stays flat-only: the trace's root span already covers the
        // request, and a duplicate "serve.request" child would be noise
        // in every tree.
        let request_span = car_obs::time_span!("serve.request");
        // Adopt the caller's trace context (the shard router stamps
        // fan-out legs) or mint a fresh trace; hostile or malformed
        // headers fall back to a fresh trace, never an error.
        let ctx = car_obs::trace::TraceContext::from_headers(
            request.header(car_obs::trace::TRACE_ID_HEADER),
            request.header(car_obs::trace::PARENT_SPAN_HEADER),
        );
        let trace = car_obs::trace::begin_request(ctx, "serve.request");
        let trace_hex = trace.trace_id().map_or_else(String::new, |id| id.to_hex());
        let (route, mut response) = routes::handle(state, &request);
        // Handler children are closed now, so these land on the root.
        car_obs::trace::annotate("route", route.label());
        car_obs::trace::annotate("status", &response.status.to_string());
        // Finish before writing: the response must carry the spans, so
        // the root cannot cover its own serialization.
        if let Some(finished) = trace.finish() {
            response = response
                .with_header(car_obs::trace::TRACE_ID_HEADER, finished.trace_id.to_hex())
                .with_header(
                    car_obs::trace::SPANS_HEADER,
                    car_obs::trace::encode_spans(&finished.spans),
                );
            car_obs::trace::publish_spans(&finished.spans);
        }
        // During shutdown, tell keep-alive clients to go away.
        if request.wants_close() || state.is_shutting_down() {
            response.close = true;
        }
        let close = response.close;
        let write_result = response.write_to(&mut writer);
        drop(request_span);
        state.metrics.record_request(route, response.status, started.elapsed());
        car_obs::debug!(
            "serve",
            [
                id = request_id,
                trace_id = trace_hex,
                status = response.status,
                us = started.elapsed().as_micros()
            ],
            "{} {}",
            request.method,
            request.path
        );
        if close || write_result.is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn test_config() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            window: 8,
            queue_capacity: 16,
            mining: MiningConfig::builder()
                .min_support_fraction(0.5)
                .min_confidence(0.5)
                .cycle_bounds(2, 2)
                .build()
                .unwrap(),
            io_timeout: Duration::from_secs(2),
            max_body_bytes: 64 * 1024,
            header_timeout: Some(Duration::from_secs(5)),
            max_inflight: 128,
            handle_signals: false,
            persist: None,
            shard: None,
        }
    }

    fn roundtrip(addr: SocketAddr, raw: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_health_and_shuts_down() {
        let handle = serve(test_config()).unwrap();
        let addr = handle.addr;
        let resp =
            roundtrip(addr, b"GET /v1/health HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("\"status\":\"ok\""));

        let resp = roundtrip(addr, b"POST /v1/shutdown HTTP/1.1\r\n\r\n");
        assert!(resp.contains("shutting_down"));
        let stats = handle.wait();
        assert_eq!(stats.requests, 2);
        // The port is released after wait().
        assert!(
            TcpStream::connect(addr).is_err() || {
                // Some platforms accept briefly during teardown; a fresh
                // bind proves the listener is gone.
                TcpListener::bind(addr).is_ok()
            }
        );
    }

    #[test]
    fn responses_carry_trace_headers_and_adopt_caller_context() {
        let handle = serve(test_config()).unwrap();
        // No inbound context: a fresh trace id is minted.
        let resp = roundtrip(
            handle.addr,
            b"GET /v1/health HTTP/1.1\r\nconnection: close\r\n\r\n",
        );
        let fresh_id = resp
            .lines()
            .find_map(|l| l.strip_prefix("x-car-trace-id: "))
            .expect("minted trace id header")
            .trim()
            .to_string();
        assert!(car_obs::trace::TraceId::from_hex(&fresh_id).is_some(), "{fresh_id}");
        assert!(resp.contains("x-car-spans: "), "{resp}");

        // Valid inbound context is adopted verbatim; the spans payload
        // names the adopted parent on its root record.
        let caller_id = "00000000000000000000000000abcdef";
        let parent = "00000000000000c1";
        let raw = format!(
            "GET /v1/health HTTP/1.1\r\nx-car-trace-id: {caller_id}\r\n\
             x-car-parent-span: {parent}\r\nconnection: close\r\n\r\n"
        );
        let resp = roundtrip(handle.addr, raw.as_bytes());
        assert!(resp.contains(&format!("x-car-trace-id: {caller_id}")), "{resp}");
        let spans = resp
            .lines()
            .find_map(|l| l.strip_prefix("x-car-spans: "))
            .expect("spans header");
        let decoded = car_obs::trace::decode_spans(
            car_obs::trace::TraceId::from_hex(caller_id).unwrap(),
            spans.trim(),
        );
        let root = decoded.iter().find(|s| s.name == "serve.request").expect("root");
        assert_eq!(root.parent, car_obs::trace::SpanUid::from_hex(parent));

        // Hostile context must not 500 — a fresh trace starts instead.
        let resp = roundtrip(
            handle.addr,
            b"GET /v1/health HTTP/1.1\r\nx-car-trace-id: '; DROP TABLE--\r\n\
              x-car-parent-span: not-hex!!\r\nconnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        let minted = resp
            .lines()
            .find_map(|l| l.strip_prefix("x-car-trace-id: "))
            .expect("fresh trace id");
        assert!(car_obs::trace::TraceId::from_hex(minted.trim()).is_some());
        handle.trigger_shutdown();
        handle.wait();
    }

    #[test]
    fn malformed_request_gets_4xx_over_the_wire() {
        let handle = serve(test_config()).unwrap();
        let resp = roundtrip(handle.addr, b"BOGUS-LINE\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        handle.trigger_shutdown();
        let stats = handle.wait();
        // Parse failures are served requests too: counted under the
        // catch-all route (and in the parse-error counter).
        assert_eq!(stats.requests, 1);
    }

    #[test]
    fn invalid_window_is_a_config_error() {
        let mut config = test_config();
        config.window = 1; // below l_max = 2
        assert!(matches!(serve(config), Err(ServeError::Config(_))));
    }

    #[test]
    fn admission_gate_sheds_with_retry_after() {
        let mut config = test_config();
        config.max_inflight = 1;
        let handle = serve(config).unwrap();
        // Occupy the single slot with an idle keep-alive connection.
        let mut holder = TcpStream::connect(handle.addr).unwrap();
        holder.write_all(b"GET /v1/health HTTP/1.1\r\n\r\n").unwrap();
        let mut reader = BufReader::new(holder.try_clone().unwrap());
        assert_eq!(crate::client::read_response(&mut reader).unwrap().status, 200);
        // The next connection must be shed with 503 + Retry-After; poll
        // briefly since the holder's slot is released asynchronously if
        // the OS raced the accept.
        let resp = roundtrip(handle.addr, b"GET /v1/health HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 503"), "{resp}");
        assert!(resp.contains("retry-after: 1"), "{resp}");
        assert!(resp.contains("overloaded"), "{resp}");
        drop(holder);
        drop(reader);
        // Once the holder closes, admission recovers. Transient resets
        // while the slot frees up are retried, not failed.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let resp = (|| -> std::io::Result<String> {
                let mut stream = TcpStream::connect(handle.addr)?;
                stream
                    .write_all(b"GET /v1/health HTTP/1.1\r\nconnection: close\r\n\r\n")?;
                let mut out = String::new();
                stream.read_to_string(&mut out)?;
                Ok(out)
            })()
            .unwrap_or_default();
            if resp.starts_with("HTTP/1.1 200") {
                break;
            }
            assert!(Instant::now() < deadline, "admission never recovered: {resp}");
            std::thread::sleep(Duration::from_millis(25));
        }
        handle.trigger_shutdown();
        handle.wait();
    }

    #[test]
    fn slow_loris_head_is_cut_off_at_the_deadline() {
        let mut config = test_config();
        config.header_timeout = Some(Duration::from_millis(200));
        let handle = serve(config).unwrap();
        let before = car_obs::counters::RESILIENCE.snapshot().header_timeouts;
        let mut stream = TcpStream::connect(handle.addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Dribble a head one fragment at a time, never finishing it.
        let mut out = String::new();
        for fragment in ["GET /v1/hea", "lth HT", "TP/1.1\r\n", "host: h\r\n"] {
            stream.write_all(fragment.as_bytes()).unwrap();
            std::thread::sleep(Duration::from_millis(120));
            // Server may have closed already mid-dribble; that's the
            // expected cut-off, so stop writing.
            if stream.read_to_string(&mut out).is_ok() {
                break;
            }
        }
        assert!(
            out.starts_with("HTTP/1.1 408") || out.is_empty(),
            "expected a 408 or a bare close, got: {out}"
        );
        assert!(
            car_obs::counters::RESILIENCE.snapshot().header_timeouts > before,
            "header timeout counter must advance"
        );
        handle.trigger_shutdown();
        handle.wait();
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let handle = serve(test_config()).unwrap();
        let mut stream = TcpStream::connect(handle.addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        for _ in 0..3 {
            stream.write_all(b"GET /v1/health HTTP/1.1\r\n\r\n").unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let response = crate::client::read_response(&mut reader).expect("response");
            assert_eq!(response.status, 200);
        }
        handle.trigger_shutdown();
        handle.wait();
    }
}
