//! A fixed-size worker thread pool over an MPSC channel.
//!
//! Connections are handled by a small set of long-lived workers rather
//! than a thread per connection: predictable memory, no spawn cost on
//! the request path, and graceful shutdown for free — dropping the
//! sender ends the channel, each worker drains what it already received
//! and exits, and [`ThreadPool::join`] waits for that.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::sync::{log_warn, LockExt};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads executing queued jobs.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `size` workers (at least 1) named `{name}-{i}`.
    ///
    /// # Errors
    ///
    /// Propagates the OS error when a worker thread cannot be spawned
    /// (already-spawned workers wind down via the dropped channel).
    pub fn new(size: usize, name: &str) -> std::io::Result<ThreadPool> {
        let size = size.max(1);
        let (sender, receiver) = std::sync::mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let mut workers = Vec::with_capacity(size);
        for i in 0..size {
            let receiver = Arc::clone(&receiver);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&receiver))?,
            );
        }
        Ok(ThreadPool { sender: Some(sender), workers })
    }

    /// Queues a job. Jobs run in submission order per worker, across
    /// workers in whatever order the scheduler picks.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        if let Some(sender) = &self.sender {
            // Send fails only if every worker exited, which should be
            // impossible while the pool owns their handles — so a
            // dropped job is worth a log line, not a panic.
            if sender.send(Box::new(job)).is_err() {
                log_warn("thread pool has no live workers; dropping job");
            }
        }
    }

    /// Stops accepting jobs, lets queued jobs finish, and joins every
    /// worker.
    pub fn join(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            if handle.join().is_err() {
                // Jobs run under catch_unwind, so this means the loop
                // itself panicked — report it rather than hiding it.
                log_warn("a pool worker panicked before exit");
            }
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        let job = {
            let guard = receiver.lock_or_recover();
            // audit:allow(a2-blocking) reason="the receiver mutex exists only to serialise recv() among pool workers; holding it across the blocking recv IS the job-distribution mechanism, and no other lock is ever taken with it"
            guard.recv()
        };
        match job {
            Ok(job) => {
                // A panicking connection handler must not take the
                // worker down with it.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            }
            Err(_) => return, // channel closed: shutdown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = ThreadPool::new(4, "test").unwrap();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn join_drains_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = ThreadPool::new(1, "drain").unwrap();
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                std::thread::sleep(std::time::Duration::from_millis(2));
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn panicking_job_does_not_kill_worker() {
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = ThreadPool::new(1, "panic").unwrap();
        pool.execute(|| panic!("boom"));
        let c = Arc::clone(&counter);
        pool.execute(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn zero_size_is_clamped_to_one() {
        let pool = ThreadPool::new(0, "clamp").unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.fetch_add(1, Ordering::SeqCst);
        });
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
