//! Property tests for the extension features: incremental mining,
//! constraint filtering, approximate cycles, and rule-timeline analysis
//! — all pinned to the batch miners as oracles.

use car_core::analyze::analyze_rule;
use car_core::approx::mine_approx;
use car_core::constraints::{
    filter_outcome, mine_interleaved_constrained, RuleConstraints,
};
use car_core::incremental::IncrementalMiner;
use car_core::{
    interleaved::mine_interleaved, sequential::mine_sequential, InterleavedOptions,
    MiningConfig,
};
use car_itemset::{ItemSet, SegmentedDb};
use proptest::prelude::*;

fn arb_db() -> impl Strategy<Value = SegmentedDb> {
    proptest::collection::vec(
        proptest::collection::vec(
            proptest::collection::vec(0u32..6, 0..4).prop_map(ItemSet::from_ids),
            0..8,
        ),
        4..10,
    )
    .prop_map(SegmentedDb::from_unit_itemsets)
}

fn arb_config(max_l: u32) -> impl Strategy<Value = MiningConfig> {
    (1u64..4, 0.0f64..=1.0, 1u32..=3, 0u32..=1).prop_map(
        move |(count, conf, lo, extra)| {
            let hi = (lo + extra).min(max_l);
            MiningConfig::builder()
                .min_support_count(count)
                .min_confidence(conf)
                .cycle_bounds(lo.min(hi), hi)
                .build()
                .expect("valid generated config")
        },
    )
}

fn arb_item_subset() -> impl Strategy<Value = ItemSet> {
    proptest::collection::btree_set(0u32..6, 1..4).prop_map(ItemSet::from_ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn incremental_matches_batch(db in arb_db(), cfg in arb_config(4)) {
        let mut miner = IncrementalMiner::new(cfg);
        miner.push_db(&db);
        let incremental = miner.current_rules().expect("window covers l_max");
        let batch = mine_sequential(&db, &cfg).unwrap();
        prop_assert_eq!(incremental, batch.rules);
    }

    #[test]
    fn constrained_mining_equals_post_filter(
        db in arb_db(),
        cfg in arb_config(4),
        within in proptest::option::of(arb_item_subset()),
        contains in proptest::option::of(arb_item_subset()),
    ) {
        let mut constraints = RuleConstraints::any();
        if let Some(w) = within {
            constraints = constraints.with_consequent_within(w);
        }
        if let Some(c) = contains {
            constraints = constraints.with_itemset_contains(c);
        }
        let full = mine_interleaved(&db, &cfg, InterleavedOptions::all()).unwrap();
        let constrained = mine_interleaved_constrained(
            &db, &cfg, InterleavedOptions::all(), &constraints,
        )
        .unwrap();
        prop_assert_eq!(constrained.rules, filter_outcome(&full, &constraints));
    }

    #[test]
    fn itemset_viability_never_rejects_an_accepted_rule(
        db in arb_db(),
        cfg in arb_config(4),
        within in arb_item_subset(),
    ) {
        let constraints = RuleConstraints::any().with_antecedent_within(within);
        let full = mine_interleaved(&db, &cfg, InterleavedOptions::all()).unwrap();
        for rule in filter_outcome(&full, &constraints) {
            prop_assert!(
                constraints.itemset_viable(&rule.rule.itemset()),
                "viability rejected accepted rule {}", rule.rule
            );
        }
    }

    #[test]
    fn approx_zero_budget_rule_set_equals_exact(db in arb_db(), cfg in arb_config(4)) {
        let exact = mine_sequential(&db, &cfg).unwrap();
        let approx = mine_approx(&db, &cfg, 0).unwrap();
        let exact_rules: Vec<_> = exact.rules.iter().map(|r| r.rule.clone()).collect();
        let approx_rules: Vec<_> = approx.rules.iter().map(|r| r.rule.clone()).collect();
        prop_assert_eq!(exact_rules, approx_rules);
    }

    #[test]
    fn approx_budget_is_monotone(db in arb_db(), cfg in arb_config(4)) {
        let mut previous: Option<usize> = None;
        for budget in 0..3u32 {
            let outcome = mine_approx(&db, &cfg, budget).unwrap();
            if let Some(prev) = previous {
                prop_assert!(outcome.rules.len() >= prev);
            }
            previous = Some(outcome.rules.len());
        }
    }

    #[test]
    fn analysis_agrees_with_mining(db in arb_db(), cfg in arb_config(4)) {
        let outcome = mine_sequential(&db, &cfg).unwrap();
        for mined in outcome.rules.iter().take(10) {
            let timeline = analyze_rule(&db, &cfg, &mined.rule).unwrap();
            prop_assert_eq!(&timeline.cycles, &mined.cycles, "{}", mined.rule);
            prop_assert!(timeline.units_held() > 0);
        }
    }
}
