//! Property tests on the work-accounting invariants of the INTERLEAVED
//! optimizations — the quantities the paper's evaluation measures.

use car_core::{interleaved::mine_interleaved, InterleavedOptions, MiningConfig};
use car_itemset::{ItemSet, SegmentedDb};
use proptest::prelude::*;

fn arb_db() -> impl Strategy<Value = SegmentedDb> {
    proptest::collection::vec(
        proptest::collection::vec(
            proptest::collection::vec(0u32..6, 0..4).prop_map(ItemSet::from_ids),
            0..8,
        ),
        4..10,
    )
    .prop_map(SegmentedDb::from_unit_itemsets)
}

fn arb_config() -> impl Strategy<Value = MiningConfig> {
    (1u64..3, 1u32..=3, 0u32..=1).prop_map(|(count, lo, extra)| {
        MiningConfig::builder()
            .min_support_count(count)
            .min_confidence(0.5)
            .cycle_bounds(lo, (lo + extra).min(4))
            .build()
            .expect("valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// With pruning and elimination fixed, every (candidate, unit) pair
    /// is either counted or skipped: the totals must add up exactly.
    #[test]
    fn skipping_conserves_total_work(db in arb_db(), cfg in arb_config()) {
        let with = mine_interleaved(&db, &cfg, InterleavedOptions::all()).unwrap();
        let without =
            mine_interleaved(&db, &cfg, InterleavedOptions::all().without_skipping())
                .unwrap();
        prop_assert_eq!(&with.rules, &without.rules);
        prop_assert_eq!(
            with.stats.support_computations + with.stats.skipped_counts,
            without.stats.support_computations + without.stats.skipped_counts,
            "conservation violated"
        );
        prop_assert!(
            with.stats.support_computations <= without.stats.support_computations
        );
        prop_assert_eq!(without.stats.skipped_counts, 0);
    }

    /// Cycle pruning only removes candidates that the unpruned run also
    /// generates: generated(pruned) + pruned == generated(unpruned).
    #[test]
    fn pruning_accounts_for_every_candidate(db in arb_db(), cfg in arb_config()) {
        let with = mine_interleaved(&db, &cfg, InterleavedOptions::all()).unwrap();
        let without =
            mine_interleaved(&db, &cfg, InterleavedOptions::all().without_pruning())
                .unwrap();
        prop_assert_eq!(&with.rules, &without.rules);
        prop_assert_eq!(
            with.stats.candidates_generated + with.stats.candidates_pruned_by_cycles,
            without.stats.candidates_generated,
            "candidate accounting violated"
        );
        prop_assert_eq!(without.stats.candidates_pruned_by_cycles, 0);
    }

    /// Elimination can only increase the skip rate (it shrinks candidate
    /// cycle sets during the scan), never change results.
    #[test]
    fn elimination_only_helps(db in arb_db(), cfg in arb_config()) {
        let with = mine_interleaved(&db, &cfg, InterleavedOptions::all()).unwrap();
        let without =
            mine_interleaved(&db, &cfg, InterleavedOptions::all().without_elimination())
                .unwrap();
        prop_assert_eq!(&with.rules, &without.rules);
        prop_assert!(
            with.stats.support_computations <= without.stats.support_computations
        );
    }

    /// Both phases' cyclic-itemset counts line up with the rules: every
    /// rule's itemset and all its subsets are cyclic large.
    #[test]
    fn cyclic_itemsets_cover_rules(db in arb_db(), cfg in arb_config()) {
        let outcome = mine_interleaved(&db, &cfg, InterleavedOptions::all()).unwrap();
        if !outcome.rules.is_empty() {
            prop_assert!(outcome.stats.cyclic_itemsets >= 2);
        }
        prop_assert!(outcome.stats.rules_checked as usize >= outcome.rules.len());
    }
}
