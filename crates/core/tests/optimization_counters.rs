//! The paper's optimization accounting, end to end: on a datagen
//! workload with planted cycles, INTERLEAVED's three optimizations
//! (cycle pruning, cycle skipping, cycle elimination) must do measurable
//! work and shrink the counted units relative to SEQUENTIAL — and
//! SEQUENTIAL must record exact zeros for all three, both in the per-run
//! [`car_core::MiningStats`] and in the process-global `car-obs`
//! counters that `/metrics` and `car mine --stats` surface.

use car_apriori::CountStrategy;
use car_core::interleaved::mine_interleaved;
use car_core::sequential::mine_sequential;
use car_core::{InterleavedOptions, MiningConfig};
use car_datagen::{generate_cyclic, CyclicConfig};
use car_itemset::SegmentedDb;

fn cyclic_db() -> SegmentedDb {
    let data = generate_cyclic(
        &CyclicConfig::default()
            .with_units(24)
            .with_transactions_per_unit(80)
            .with_num_cyclic_patterns(5)
            .with_cycle_length_range(2, 4),
        7,
    );
    data.db
}

fn config() -> MiningConfig {
    MiningConfig::builder()
        .min_support_fraction(0.2)
        .min_confidence(0.5)
        .cycle_bounds(2, 6)
        .build()
        .unwrap()
}

#[test]
fn interleaved_optimizations_do_work_on_cyclic_data() {
    let db = cyclic_db();
    let config = config();

    let before = car_obs::counters::MINE.snapshot();
    let outcome = mine_interleaved(&db, &config, InterleavedOptions::all()).unwrap();
    let delta = car_obs::counters::MINE.snapshot().delta_since(&before);

    assert!(!outcome.rules.is_empty(), "planted cycles should yield rules");
    let s = &outcome.stats;
    assert!(s.skipped_counts > 0, "cycle skipping should avoid unit counts");
    assert!(s.candidates_pruned_by_cycles > 0, "cycle pruning should fire");
    assert!(s.cycles_eliminated > 0, "cycle elimination should fire");

    // The per-run stats must flush verbatim into the process-global
    // counters (other tests mine concurrently, so compare via >=).
    assert!(delta.runs >= 1);
    assert!(delta.unit_counts_skipped >= s.skipped_counts);
    assert!(delta.candidates_pruned >= s.candidates_pruned_by_cycles);
    assert!(delta.cycles_eliminated >= s.cycles_eliminated);
    assert!(delta.support_computations >= s.support_computations);
}

#[test]
fn sequential_records_exact_zeros_for_the_three_optimizations() {
    let db = cyclic_db();
    let outcome = mine_sequential(&db, &config()).unwrap();

    // SEQUENTIAL counts every candidate in every unit: the three
    // INTERLEAVED optimization counters must be exactly zero. (The
    // a-posteriori detector's eliminations are tracked separately as
    // detect_eliminations, precisely so this invariant is checkable.)
    let s = &outcome.stats;
    assert_eq!(s.skipped_counts, 0);
    assert_eq!(s.candidates_pruned_by_cycles, 0);
    assert_eq!(s.cycles_eliminated, 0);
    assert!(s.support_computations > 0);
}

#[test]
fn skipped_unit_scans_build_zero_bitmaps() {
    // Force the vertical kernel so every non-skipped unit scan at levels
    // k >= 2 builds exactly one tid-bitmap. A unit scan skipped by cycle
    // skipping never reaches the kernel, so with and without skipping
    // must differ by exactly the number of skipped unit scans — the
    // "never build the bitmap for a skipped unit" property, proven by
    // the elimination counters rather than asserted by construction.
    let db = cyclic_db();
    let config = MiningConfig::builder()
        .min_support_fraction(0.2)
        .min_confidence(0.5)
        .cycle_bounds(2, 6)
        .counting(CountStrategy::Vertical)
        .build()
        .unwrap();

    let with = mine_interleaved(&db, &config, InterleavedOptions::all()).unwrap();
    let without =
        mine_interleaved(&db, &config, InterleavedOptions::all().without_skipping())
            .unwrap();

    // Identical results => identical levels and candidate trajectories,
    // so the full-scan run's builds are the universe of unit scans.
    assert_eq!(with.rules, without.rules);
    assert!(without.stats.bitmap_builds > 0, "vertical kernel must run");
    assert_eq!(without.stats.skipped_unit_scans, 0);
    assert!(with.stats.skipped_unit_scans > 0, "skipping should retire whole units");
    assert_eq!(
        with.stats.bitmap_builds,
        without.stats.bitmap_builds - with.stats.skipped_unit_scans,
        "every skipped unit scan must skip exactly its bitmap build"
    );
}

#[test]
fn bitmap_builds_flush_into_the_global_counter() {
    let db = cyclic_db();
    let config = MiningConfig::builder()
        .min_support_fraction(0.2)
        .min_confidence(0.5)
        .cycle_bounds(2, 6)
        .counting(CountStrategy::Vertical)
        .build()
        .unwrap();

    let before = car_obs::counters::MINE.snapshot();
    let outcome = mine_interleaved(&db, &config, InterleavedOptions::all()).unwrap();
    let delta = car_obs::counters::MINE.snapshot().delta_since(&before);

    assert!(outcome.stats.bitmap_builds > 0);
    // Other tests mine concurrently, so compare via >=.
    assert!(delta.bitmap_builds >= outcome.stats.bitmap_builds);
}

#[test]
fn interleaved_counts_strictly_fewer_units_than_sequential() {
    let db = cyclic_db();
    let config = config();

    let seq = mine_sequential(&db, &config).unwrap();
    let int = mine_interleaved(&db, &config, InterleavedOptions::all()).unwrap();

    // Same rules, less counting work — the paper's headline claim.
    assert_eq!(seq.rules, int.rules);
    let ratio =
        seq.stats.support_computations as f64 / int.stats.support_computations as f64;
    assert!(
        ratio > 1.0,
        "SEQUENTIAL counted {} units, INTERLEAVED {} (ratio {ratio:.2}) — \
         the optimizations should strictly reduce counted units",
        seq.stats.support_computations,
        int.stats.support_computations
    );
}
