//! Equivalence properties for the sliding-window query fast path:
//! under random push/evict/query interleavings, with and without
//! confidence escalation, `SlidingWindowMiner::query_rules` must match
//! batch-mining the retained window exactly.
//!
//! This is the contract that lets the online cycle state replace
//! per-query re-detection: the memoised fast path, the uncached online
//! rebuild, and the parallel escalated path all have to agree with
//! `mine_sequential` over the retained units at every point of the
//! stream.

use car_apriori::CountStrategy;
use car_core::window::SlidingWindowMiner;
use car_core::{sequential::mine_sequential, CyclicRule, MinConfidence, MiningConfig};
use car_itemset::{ItemSet, SegmentedDb};
use proptest::prelude::*;

fn arb_units() -> impl Strategy<Value = Vec<Vec<ItemSet>>> {
    // 6..18 units, 0..8 transactions each, items 0..6, lengths 0..4.
    proptest::collection::vec(
        proptest::collection::vec(
            proptest::collection::vec(0u32..6, 0..4).prop_map(ItemSet::from_ids),
            0..8,
        ),
        6..18,
    )
}

fn arb_window_config() -> impl Strategy<Value = (usize, MiningConfig)> {
    (
        1u64..4,      // absolute per-unit support count
        0.0f64..=1.0, // min confidence
        1u32..=3,     // l_min
        0u32..=2,     // l_max - l_min
        4usize..=8,   // window length
    )
        .prop_map(|(count, conf, lo, extra, window)| {
            let hi = (lo + extra).min(window as u32);
            let lo = lo.min(hi);
            let config = MiningConfig::builder()
                .min_support_count(count)
                .min_confidence(conf)
                .cycle_bounds(lo, hi)
                .build()
                .expect("valid generated config");
            (window, config)
        })
}

/// Batch oracle: mine the last `window` units of `history` from scratch.
fn batch_rules(
    history: &[Vec<ItemSet>],
    window: usize,
    cfg: &MiningConfig,
) -> Vec<CyclicRule> {
    let start = history.len().saturating_sub(window);
    let db = SegmentedDb::from_unit_itemsets(history[start..].to_vec());
    mine_sequential(&db, cfg).expect("batch config valid").rules
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn online_fast_path_matches_batch_at_every_push(
        units in arb_units(),
        window_config in arb_window_config(),
    ) {
        let (window, cfg) = window_config;
        let mut miner = SlidingWindowMiner::new(cfg, window).unwrap();
        for (day, unit) in units.iter().enumerate() {
            miner.push_unit(unit);
            if miner.len() < cfg.cycle_bounds.l_max() as usize {
                prop_assert!(miner.current_rules().is_err(), "day {}", day);
                continue;
            }
            let batch = batch_rules(&units[..=day], window, &cfg);
            // Memoised fast path (first query fills, second reads).
            prop_assert_eq!(&*miner.current_rules().unwrap(), &batch, "day {}", day);
            prop_assert_eq!(
                &*miner.current_rules().unwrap(), &batch,
                "memoised day {}", day
            );
            // Uncached online rebuild agrees too.
            prop_assert_eq!(
                &*miner.assemble_view().unwrap(), &batch,
                "uncached day {}", day
            );
        }
    }

    #[test]
    fn vertical_window_matches_the_pre_kernel_oracle_at_every_push(
        units in arb_units(),
        window_config in arb_window_config(),
    ) {
        // The vertical tid-bitmap kernel must be invisible to the window
        // path: a miner forced onto `Vertical` and a pre-kernel oracle
        // forced onto `HashMap` must publish identical rule views after
        // every single push.
        let (window, config) = window_config;
        let mut vertical_cfg = config;
        vertical_cfg.counting = CountStrategy::Vertical;
        let mut oracle_cfg = config;
        oracle_cfg.counting = CountStrategy::HashMap;
        let mut vertical = SlidingWindowMiner::new(vertical_cfg, window).unwrap();
        let mut oracle = SlidingWindowMiner::new(oracle_cfg, window).unwrap();
        for (day, unit) in units.iter().enumerate() {
            vertical.push_unit(unit);
            oracle.push_unit(unit);
            if vertical.len() < config.cycle_bounds.l_max() as usize {
                prop_assert!(vertical.current_rules().is_err(), "day {}", day);
                continue;
            }
            prop_assert_eq!(
                &*vertical.current_rules().unwrap(),
                &*oracle.current_rules().unwrap(),
                "vertical vs hashmap oracle, day {}", day
            );
            // And both agree with batch-mining the retained window.
            let batch = batch_rules(&units[..=day], window, &oracle_cfg);
            prop_assert_eq!(
                &*vertical.current_rules().unwrap(), &batch,
                "vertical vs batch, day {}", day
            );
        }
    }

    #[test]
    fn escalated_queries_match_batch_and_leave_the_fast_path_intact(
        units in arb_units(),
        window_config in arb_window_config(),
        bump in 0.0f64..=1.0,
    ) {
        let (window, cfg) = window_config;
        // An escalated threshold interpolated between the configured
        // confidence and 1.0 (clamped against fp drift).
        let base = cfg.min_confidence.value();
        let q = MinConfidence::new((base + (1.0 - base) * bump).min(1.0))
            .expect("interpolant stays in 0..=1");
        let mut strict_cfg = cfg;
        strict_cfg.min_confidence = q;
        let mut miner = SlidingWindowMiner::new(cfg, window).unwrap();
        for (day, unit) in units.iter().enumerate() {
            miner.push_unit(unit);
            if miner.len() < cfg.cycle_bounds.l_max() as usize {
                continue;
            }
            // Query at interleaved points, not every push, so pushes and
            // queries genuinely interleave.
            if day % 3 != 0 {
                continue;
            }
            let strict_batch = batch_rules(&units[..=day], window, &strict_cfg);
            prop_assert_eq!(
                &*miner.query_rules(Some(q)).unwrap(), &strict_batch,
                "escalated day {}", day
            );
            // The detour through re-detection must not disturb the
            // default-confidence fast path.
            let batch = batch_rules(&units[..=day], window, &cfg);
            prop_assert_eq!(
                &*miner.query_rules(None).unwrap(), &batch,
                "fast path after escalation, day {}", day
            );
        }
    }
}
