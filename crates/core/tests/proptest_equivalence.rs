//! The central correctness property of the reproduction: SEQUENTIAL and
//! INTERLEAVED (under every ablation combination), plus the parallel
//! variant, produce identical cyclic rules with identical minimal cycles
//! on arbitrary segmented databases.

use car_core::{
    interleaved::mine_interleaved, sequential::mine_sequential, CountStrategy,
    InterleavedOptions, MiningConfig,
};
use car_itemset::{ItemSet, SegmentedDb};
use proptest::prelude::*;

fn arb_db() -> impl Strategy<Value = SegmentedDb> {
    // 4..10 units, 0..8 transactions each, items 0..6, lengths 0..4.
    proptest::collection::vec(
        proptest::collection::vec(
            proptest::collection::vec(0u32..6, 0..4).prop_map(ItemSet::from_ids),
            0..8,
        ),
        4..10,
    )
    .prop_map(SegmentedDb::from_unit_itemsets)
}

fn arb_config(max_units: u32) -> impl Strategy<Value = MiningConfig> {
    (
        1u64..4,      // absolute per-unit support count
        0.0f64..=1.0, // min confidence
        1u32..=3,     // l_min
        0u32..=2,     // l_max - l_min
    )
        .prop_map(move |(count, conf, lo, extra)| {
            let hi = (lo + extra).min(max_units.max(1));
            let lo = lo.min(hi);
            MiningConfig::builder()
                .min_support_count(count)
                .min_confidence(conf)
                .cycle_bounds(lo, hi)
                .build()
                .expect("valid generated config")
        })
}

fn all_option_combos() -> [InterleavedOptions; 8] {
    let mut combos = [InterleavedOptions::all(); 8];
    for (i, combo) in combos.iter_mut().enumerate() {
        combo.cycle_pruning = i & 1 != 0;
        combo.cycle_skipping = i & 2 != 0;
        combo.cycle_elimination = i & 4 != 0;
    }
    combos
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn interleaved_matches_sequential_under_all_ablations(
        db in arb_db(),
        seed_config in arb_config(4),
    ) {
        let cfg = seed_config;
        let seq = mine_sequential(&db, &cfg).expect("valid config");
        for opts in all_option_combos() {
            let int = mine_interleaved(&db, &cfg, opts).expect("valid config");
            prop_assert_eq!(
                &seq.rules, &int.rules,
                "ablation {:?} diverged (config {:?})", opts, cfg
            );
        }
    }

    #[test]
    fn counting_engines_do_not_change_results(
        db in arb_db(),
        seed_config in arb_config(4),
    ) {
        let mut cfg = seed_config;
        cfg.counting = CountStrategy::HashMap;
        let a = mine_interleaved(&db, &cfg, InterleavedOptions::all()).unwrap();
        cfg.counting = CountStrategy::HashTree;
        let b = mine_interleaved(&db, &cfg, InterleavedOptions::all()).unwrap();
        prop_assert_eq!(a.rules, b.rules);
    }

    #[test]
    fn mined_rules_satisfy_definition(
        db in arb_db(),
        seed_config in arb_config(4),
    ) {
        // Every reported (rule, cycle) pair must satisfy the definition:
        // in each on-cycle unit the union is large and confidence passes.
        let cfg = seed_config;
        let outcome = mine_sequential(&db, &cfg).expect("valid config");
        for cr in &outcome.rules {
            let z = cr.rule.itemset();
            prop_assert!(!cr.cycles.is_empty());
            for &cycle in &cr.cycles {
                for u in cycle.units(db.num_units()) {
                    let unit = db.unit(u);
                    let threshold = cfg.min_support.threshold(unit.len());
                    let z_count =
                        unit.iter().filter(|t| z.is_subset_of(t)).count() as u64;
                    let x_count = unit
                        .iter()
                        .filter(|t| cr.rule.antecedent.is_subset_of(t))
                        .count() as u64;
                    prop_assert!(
                        z_count >= threshold,
                        "{} not large at unit {} of cycle {}", z, u, cycle
                    );
                    prop_assert!(
                        cfg.min_confidence.accepts(z_count, x_count),
                        "{} fails confidence at unit {} of cycle {}",
                        cr.rule, u, cycle
                    );
                }
            }
            // Minimality: no reported cycle is a multiple of another.
            for &a in &cr.cycles {
                for &b in &cr.cycles {
                    if a != b {
                        prop_assert!(!a.is_multiple_of(b));
                    }
                }
            }
        }
    }

    #[test]
    fn mined_rules_are_complete(
        db in arb_db(),
        seed_config in arb_config(4),
    ) {
        // Spot-check completeness: for every pair of items (a, b) and the
        // rule {a} => {b}, compute its hold-sequence by definition and
        // verify the miner reports it cyclic iff the sequence has a cycle.
        use car_cycles::{detect_cycles, BitSeq};
        let cfg = seed_config;
        let outcome = mine_sequential(&db, &cfg).expect("valid config");
        let n = db.num_units();
        for a in 0u32..6 {
            for b in 0u32..6 {
                if a == b { continue; }
                let x = ItemSet::from_ids([a]);
                let z = ItemSet::from_ids([a, b]);
                let mut seq = BitSeq::zeros(n);
                for (u, unit) in db.iter_units() {
                    let threshold = cfg.min_support.threshold(unit.len());
                    let z_count = unit.iter().filter(|t| z.is_subset_of(t)).count() as u64;
                    let x_count = unit.iter().filter(|t| x.is_subset_of(t)).count() as u64;
                    if z_count >= threshold && cfg.min_confidence.accepts(z_count, x_count) {
                        seq.set(u, true);
                    }
                }
                let expected = !detect_cycles(&seq, cfg.cycle_bounds).is_empty();
                let reported = outcome.rules.iter().any(|cr| {
                    cr.rule.antecedent == x
                        && cr.rule.consequent == ItemSet::from_ids([b])
                });
                prop_assert_eq!(
                    reported, expected,
                    "rule {{{}}} => {{{}}} (config {:?})", a, b, cfg
                );
            }
        }
    }
}

#[cfg(feature = "parallel")]
mod parallel_equivalence {
    use super::*;
    use car_core::parallel::mine_sequential_parallel;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn parallel_matches_serial(
            db in arb_db(),
            seed_config in arb_config(4),
            threads in 1usize..5,
        ) {
            let cfg = seed_config;
            let serial = mine_sequential(&db, &cfg).unwrap();
            let parallel = mine_sequential_parallel(&db, &cfg, threads).unwrap();
            prop_assert_eq!(serial.rules, parallel.rules);
        }
    }
}
