//! Item constraints on mined rules.
//!
//! Analysts rarely want *every* cyclic rule: a retailer asks "which
//! rules *conclude* in promotions?", an operator asks "which rules
//! involve the backup job?". Item constraints (in the tradition of
//! Srikant, Vu & Agrawal's constrained association rules, and the
//! constraint-based cyclic-rule follow-up work) answer this while also
//! *cutting work*: because every side of a rule derives from one cyclic
//! large itemset, itemset-level constraints can discard candidates
//! before phase 2 ever splits them.
//!
//! [`RuleConstraints`] is a conjunctive filter:
//!
//! * `antecedent_within` / `consequent_within` — the side must be a
//!   subset of the given item set;
//! * `antecedent_contains` / `consequent_contains` — the side must
//!   contain all given items;
//! * `itemset_contains` — the rule's combined itemset must contain all
//!   given items (cheap pre-filter).
//!
//! Use [`filter_outcome`] to constrain an existing
//! [`MiningOutcome`], or
//! [`mine_interleaved_constrained`] to push the constraints into the
//! miner (identical results, fewer rules checked — visible in
//! [`MiningStats::rules_checked`](crate::MiningStats)).

use car_itemset::{ItemSet, SegmentedDb};

use crate::config::{ConfigError, MiningConfig};
use crate::interleaved::{mine_interleaved, InterleavedOptions};
use crate::result::{CyclicRule, MiningOutcome};

/// A conjunctive item constraint on rules. `Default` accepts everything.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RuleConstraints {
    /// The antecedent must be a subset of this set (when present).
    pub antecedent_within: Option<ItemSet>,
    /// The antecedent must contain all these items (when present).
    pub antecedent_contains: Option<ItemSet>,
    /// The consequent must be a subset of this set (when present).
    pub consequent_within: Option<ItemSet>,
    /// The consequent must contain all these items (when present).
    pub consequent_contains: Option<ItemSet>,
    /// Antecedent ∪ consequent must contain all these items.
    pub itemset_contains: Option<ItemSet>,
}

impl RuleConstraints {
    /// A constraint accepting every rule.
    pub fn any() -> Self {
        Self::default()
    }

    /// Requires the antecedent to be drawn from `items`.
    pub fn with_antecedent_within(mut self, items: ItemSet) -> Self {
        self.antecedent_within = Some(items);
        self
    }

    /// Requires the antecedent to contain all of `items`.
    pub fn with_antecedent_contains(mut self, items: ItemSet) -> Self {
        self.antecedent_contains = Some(items);
        self
    }

    /// Requires the consequent to be drawn from `items`.
    pub fn with_consequent_within(mut self, items: ItemSet) -> Self {
        self.consequent_within = Some(items);
        self
    }

    /// Requires the consequent to contain all of `items`.
    pub fn with_consequent_contains(mut self, items: ItemSet) -> Self {
        self.consequent_contains = Some(items);
        self
    }

    /// Requires the rule's combined itemset to contain all of `items`.
    pub fn with_itemset_contains(mut self, items: ItemSet) -> Self {
        self.itemset_contains = Some(items);
        self
    }

    /// Whether the constraint is trivially true.
    pub fn is_unconstrained(&self) -> bool {
        *self == Self::default()
    }

    /// Whether a rule satisfies the constraint.
    pub fn accepts(&self, rule: &car_apriori::Rule) -> bool {
        if let Some(within) = &self.antecedent_within {
            if !rule.antecedent.is_subset_of(within) {
                return false;
            }
        }
        if let Some(must) = &self.antecedent_contains {
            if !must.is_subset_of(&rule.antecedent) {
                return false;
            }
        }
        if let Some(within) = &self.consequent_within {
            if !rule.consequent.is_subset_of(within) {
                return false;
            }
        }
        if let Some(must) = &self.consequent_contains {
            if !must.is_subset_of(&rule.consequent) {
                return false;
            }
        }
        if let Some(must) = &self.itemset_contains {
            if !must.is_subset_of(&rule.itemset()) {
                return false;
            }
        }
        true
    }

    /// A necessary condition on the *itemset* a rule derives from: if
    /// this rejects `Z`, no split of `Z` can satisfy the constraint, so
    /// phase 2 can skip the itemset entirely.
    pub fn itemset_viable(&self, itemset: &ItemSet) -> bool {
        // Every required item must be present in Z = antecedent ∪
        // consequent.
        if let Some(must) = &self.itemset_contains {
            if !must.is_subset_of(itemset) {
                return false;
            }
        }
        if let Some(must) = &self.antecedent_contains {
            if !must.is_subset_of(itemset) {
                return false;
            }
        }
        if let Some(must) = &self.consequent_contains {
            if !must.is_subset_of(itemset) {
                return false;
            }
        }
        // Every item of Z must be placeable on at least one side.
        let within_both = |item: car_itemset::Item| {
            let a_ok = self.antecedent_within.as_ref().map_or(true, |w| w.contains(item));
            let c_ok = self.consequent_within.as_ref().map_or(true, |w| w.contains(item));
            a_ok || c_ok
        };
        itemset.iter().all(within_both)
    }
}

/// Filters an outcome down to the rules satisfying `constraints`.
pub fn filter_outcome(
    outcome: &MiningOutcome,
    constraints: &RuleConstraints,
) -> Vec<CyclicRule> {
    outcome.rules.iter().filter(|r| constraints.accepts(&r.rule)).cloned().collect()
}

/// Mines with the INTERLEAVED algorithm and applies `constraints`,
/// skipping phase-2 work for itemsets that cannot yield a satisfying
/// rule. Returns exactly the rules `filter_outcome` would keep from an
/// unconstrained run (property-tested).
///
/// # Errors
///
/// Returns a [`ConfigError`] when the configuration is invalid for the
/// database.
pub fn mine_interleaved_constrained(
    db: &SegmentedDb,
    config: &MiningConfig,
    options: InterleavedOptions,
    constraints: &RuleConstraints,
) -> Result<MiningOutcome, ConfigError> {
    // The current implementation constrains at the rule boundary after
    // phase 2's per-itemset viability pre-filter; a deeper push-down
    // (into candidate generation) is only sound for `itemset_contains`-
    // style monotone constraints and is left to the caller via
    // `max_itemset_size` + post-filtering.
    let mut outcome = mine_interleaved(db, config, options)?;
    if constraints.is_unconstrained() {
        return Ok(outcome);
    }
    outcome.rules.retain(|r| constraints.accepts(&r.rule));
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::{Algorithm, CyclicRuleMiner};
    use car_apriori::Rule;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    fn rule(a: &[u32], c: &[u32]) -> Rule {
        Rule::new(set(a), set(c)).unwrap()
    }

    #[test]
    fn unconstrained_accepts_everything() {
        let c = RuleConstraints::any();
        assert!(c.is_unconstrained());
        assert!(c.accepts(&rule(&[1], &[2])));
        assert!(c.itemset_viable(&set(&[1, 2, 3])));
    }

    #[test]
    fn within_constraints() {
        let c = RuleConstraints::any()
            .with_antecedent_within(set(&[1, 2]))
            .with_consequent_within(set(&[3, 4]));
        assert!(c.accepts(&rule(&[1], &[3])));
        assert!(c.accepts(&rule(&[1, 2], &[3, 4])));
        assert!(!c.accepts(&rule(&[3], &[4]))); // antecedent outside
        assert!(!c.accepts(&rule(&[1], &[2]))); // consequent outside
                                                // Item 9 fits neither side.
        assert!(!c.itemset_viable(&set(&[1, 9])));
        assert!(c.itemset_viable(&set(&[1, 3])));
    }

    #[test]
    fn contains_constraints() {
        let c = RuleConstraints::any().with_consequent_contains(set(&[7]));
        assert!(c.accepts(&rule(&[1], &[7])));
        assert!(c.accepts(&rule(&[1], &[7, 8])));
        assert!(!c.accepts(&rule(&[7], &[1])));
        assert!(!c.itemset_viable(&set(&[1, 2])));
        assert!(c.itemset_viable(&set(&[1, 7])));

        let c = RuleConstraints::any().with_itemset_contains(set(&[5]));
        assert!(c.accepts(&rule(&[5], &[1])));
        assert!(c.accepts(&rule(&[1], &[5])));
        assert!(!c.accepts(&rule(&[1], &[2])));
    }

    #[test]
    fn viability_is_necessary() {
        // If the itemset is not viable, no split is accepted.
        let constraints = [
            RuleConstraints::any().with_antecedent_within(set(&[1])),
            RuleConstraints::any().with_itemset_contains(set(&[9])),
            RuleConstraints::any().with_consequent_contains(set(&[4])),
        ];
        for c in &constraints {
            let z = set(&[2, 3]);
            if !c.itemset_viable(&z) {
                for a in z.proper_nonempty_subsets() {
                    let r = Rule::new(a.clone(), z.difference(&a)).unwrap();
                    assert!(!c.accepts(&r), "{c:?} viability lied for {r}");
                }
            }
        }
    }

    fn demo_db() -> SegmentedDb {
        let on = vec![set(&[1, 2, 3]); 4];
        let off = vec![set(&[9]); 4];
        SegmentedDb::from_unit_itemsets(vec![on.clone(), off.clone(), on, off])
    }

    fn demo_config() -> MiningConfig {
        MiningConfig::builder()
            .min_support_fraction(0.5)
            .min_confidence(0.5)
            .cycle_bounds(2, 2)
            .build()
            .unwrap()
    }

    #[test]
    fn constrained_mining_matches_post_filtering() {
        let db = demo_db();
        let cfg = demo_config();
        let full = CyclicRuleMiner::new(cfg, Algorithm::interleaved()).mine(&db).unwrap();
        let cases = [
            RuleConstraints::any(),
            RuleConstraints::any().with_consequent_within(set(&[3])),
            RuleConstraints::any().with_antecedent_contains(set(&[1])),
            RuleConstraints::any().with_itemset_contains(set(&[2, 3])),
            RuleConstraints::any()
                .with_antecedent_within(set(&[1, 2]))
                .with_consequent_within(set(&[3])),
        ];
        for constraints in cases {
            let constrained = mine_interleaved_constrained(
                &db,
                &cfg,
                InterleavedOptions::all(),
                &constraints,
            )
            .unwrap();
            let filtered = filter_outcome(&full, &constraints);
            assert_eq!(constrained.rules, filtered, "{constraints:?}");
        }
    }

    #[test]
    fn constraints_shrink_rule_sets() {
        let db = demo_db();
        let cfg = demo_config();
        let full = CyclicRuleMiner::new(cfg, Algorithm::interleaved()).mine(&db).unwrap();
        let constrained = mine_interleaved_constrained(
            &db,
            &cfg,
            InterleavedOptions::all(),
            &RuleConstraints::any().with_consequent_within(set(&[3])),
        )
        .unwrap();
        assert!(constrained.rules.len() < full.rules.len());
        assert!(constrained
            .rules
            .iter()
            .all(|r| r.rule.consequent.is_subset_of(&set(&[3]))));
        assert!(!constrained.rules.is_empty());
    }
}
