use car_itemset::SegmentedDb;

use crate::config::{ConfigError, MiningConfig};
use crate::interleaved::{mine_interleaved, InterleavedOptions};
use crate::result::MiningOutcome;
use crate::sequential::mine_sequential;

/// Which of the paper's algorithms to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Per-unit Apriori plus a posteriori cycle detection.
    Sequential,
    /// Interleaved support counting and cycle detection, with optional
    /// ablation of individual techniques.
    Interleaved(InterleavedOptions),
}

impl Algorithm {
    /// The INTERLEAVED algorithm with every optimization enabled.
    pub fn interleaved() -> Self {
        Algorithm::Interleaved(InterleavedOptions::all())
    }
}

impl Default for Algorithm {
    fn default() -> Self {
        Algorithm::interleaved()
    }
}

/// High-level entry point: a configured cyclic association rule miner.
///
/// ```
/// use car_core::{Algorithm, CyclicRuleMiner, MiningConfig};
/// use car_itemset::{ItemSet, SegmentedDb};
///
/// let db = SegmentedDb::from_unit_itemsets(vec![
///     vec![ItemSet::from_ids([1, 2])],
///     vec![ItemSet::from_ids([3])],
///     vec![ItemSet::from_ids([1, 2])],
///     vec![ItemSet::from_ids([3])],
/// ]);
/// let config = MiningConfig::builder()
///     .min_support_fraction(0.5)
///     .min_confidence(0.5)
///     .cycle_bounds(2, 2)
///     .build()
///     .unwrap();
/// let outcome = CyclicRuleMiner::new(config, Algorithm::Sequential)
///     .mine(&db)
///     .unwrap();
/// assert_eq!(outcome.rules.len(), 2); // {1}=>{2} and {2}=>{1} at (2,0)
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CyclicRuleMiner {
    config: MiningConfig,
    algorithm: Algorithm,
}

impl CyclicRuleMiner {
    /// Creates a miner.
    pub fn new(config: MiningConfig, algorithm: Algorithm) -> Self {
        CyclicRuleMiner { config, algorithm }
    }

    /// The mining configuration.
    pub fn config(&self) -> &MiningConfig {
        &self.config
    }

    /// The selected algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Mines the cyclic association rules of `db`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the configuration is invalid for
    /// the database.
    pub fn mine(&self, db: &SegmentedDb) -> Result<MiningOutcome, ConfigError> {
        match self.algorithm {
            Algorithm::Sequential => mine_sequential(db, &self.config),
            Algorithm::Interleaved(options) => {
                mine_interleaved(db, &self.config, options)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use car_itemset::ItemSet;

    fn db() -> SegmentedDb {
        let on = vec![ItemSet::from_ids([1, 2]); 4];
        let off = vec![ItemSet::from_ids([7]); 4];
        SegmentedDb::from_unit_itemsets(vec![
            on.clone(),
            off.clone(),
            on.clone(),
            off.clone(),
            on,
            off,
        ])
    }

    fn config() -> MiningConfig {
        MiningConfig::builder()
            .min_support_fraction(0.5)
            .min_confidence(0.5)
            .cycle_bounds(2, 3)
            .build()
            .unwrap()
    }

    #[test]
    fn both_algorithms_agree_via_miner() {
        let db = db();
        let seq =
            CyclicRuleMiner::new(config(), Algorithm::Sequential).mine(&db).unwrap();
        let int =
            CyclicRuleMiner::new(config(), Algorithm::interleaved()).mine(&db).unwrap();
        assert_eq!(seq.rules, int.rules);
        assert!(!seq.rules.is_empty());
    }

    #[test]
    fn default_algorithm_is_interleaved() {
        assert_eq!(Algorithm::default(), Algorithm::interleaved());
    }

    #[test]
    fn accessors() {
        let miner = CyclicRuleMiner::new(config(), Algorithm::Sequential);
        assert_eq!(miner.algorithm(), Algorithm::Sequential);
        assert_eq!(miner.config().cycle_bounds.l_max(), 3);
    }
}
