use std::fmt;

use car_apriori::{CountStrategy, MinConfidence, MinSupport};
use car_cycles::CycleBounds;

/// Configuration shared by every cyclic-rule mining algorithm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MiningConfig {
    /// Per-unit minimum support (fractions apply to each unit's size).
    pub min_support: MinSupport,
    /// Per-unit minimum confidence.
    pub min_confidence: MinConfidence,
    /// Bounds on interesting cycle lengths.
    pub cycle_bounds: CycleBounds,
    /// Optional cap on mined itemset size.
    pub max_itemset_size: Option<usize>,
    /// Support counting engine.
    pub counting: CountStrategy,
}

impl MiningConfig {
    /// Starts building a configuration.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder::default()
    }

    /// Validates the configuration against a database of `num_units`
    /// time units.
    ///
    /// The key requirement is `l_max ≤ num_units`: a cycle longer than
    /// the observation window can never be confirmed or refuted (its
    /// offsets past `num_units` would hold vacuously), and the SEQUENTIAL
    /// and INTERLEAVED algorithms only coincide when every candidate
    /// cycle is observable.
    pub fn validate_for(&self, num_units: usize) -> Result<(), ConfigError> {
        if num_units == 0 {
            return Err(ConfigError::EmptyDatabase);
        }
        if self.cycle_bounds.l_max() as usize > num_units {
            return Err(ConfigError::CycleBoundExceedsUnits {
                l_max: self.cycle_bounds.l_max(),
                num_units,
            });
        }
        Ok(())
    }
}

impl Default for MiningConfig {
    fn default() -> Self {
        MiningConfig {
            min_support: MinSupport::Fraction(0.05),
            min_confidence: MinConfidence::new(0.6).expect("valid constant"),
            cycle_bounds: CycleBounds::make(2, 16),
            max_itemset_size: None,
            counting: CountStrategy::Auto,
        }
    }
}

/// Builder for [`MiningConfig`].
#[derive(Clone, Debug, Default)]
pub struct ConfigBuilder {
    min_support_fraction: Option<f64>,
    min_support_count: Option<u64>,
    min_confidence: Option<f64>,
    cycle_bounds: Option<(u32, u32)>,
    max_itemset_size: Option<usize>,
    counting: Option<CountStrategy>,
}

impl ConfigBuilder {
    /// Per-unit minimum support as a fraction of the unit's size.
    pub fn min_support_fraction(mut self, f: f64) -> Self {
        self.min_support_fraction = Some(f);
        self.min_support_count = None;
        self
    }

    /// Per-unit minimum support as an absolute transaction count.
    pub fn min_support_count(mut self, c: u64) -> Self {
        self.min_support_count = Some(c);
        self.min_support_fraction = None;
        self
    }

    /// Per-unit minimum confidence in `[0, 1]`.
    pub fn min_confidence(mut self, f: f64) -> Self {
        self.min_confidence = Some(f);
        self
    }

    /// Cycle length bounds `l_min ..= l_max`.
    pub fn cycle_bounds(mut self, l_min: u32, l_max: u32) -> Self {
        self.cycle_bounds = Some((l_min, l_max));
        self
    }

    /// Caps mined itemset size.
    pub fn max_itemset_size(mut self, k: usize) -> Self {
        self.max_itemset_size = Some(k);
        self
    }

    /// Selects the support counting engine.
    pub fn counting(mut self, strategy: CountStrategy) -> Self {
        self.counting = Some(strategy);
        self
    }

    /// Finalises the configuration.
    pub fn build(self) -> Result<MiningConfig, ConfigError> {
        let min_support = if let Some(c) = self.min_support_count {
            MinSupport::count(c)
        } else {
            let f = self.min_support_fraction.unwrap_or(0.05);
            MinSupport::fraction(f).ok_or(ConfigError::InvalidSupport(f))?
        };
        let conf = self.min_confidence.unwrap_or(0.6);
        let min_confidence =
            MinConfidence::new(conf).ok_or(ConfigError::InvalidConfidence(conf))?;
        let (lo, hi) = self.cycle_bounds.unwrap_or((2, 16));
        let cycle_bounds =
            CycleBounds::new(lo, hi).ok_or(ConfigError::InvalidBounds { lo, hi })?;
        Ok(MiningConfig {
            min_support,
            min_confidence,
            cycle_bounds,
            max_itemset_size: self.max_itemset_size,
            counting: self.counting.unwrap_or_default(),
        })
    }
}

/// Configuration and validation errors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfigError {
    /// The support fraction was outside `[0, 1]`.
    InvalidSupport(f64),
    /// The confidence was outside `[0, 1]`.
    InvalidConfidence(f64),
    /// The cycle bounds were not `1 ≤ l_min ≤ l_max`.
    InvalidBounds {
        /// Requested lower bound.
        lo: u32,
        /// Requested upper bound.
        hi: u32,
    },
    /// The database has no time units.
    EmptyDatabase,
    /// `l_max` exceeds the number of observed time units.
    CycleBoundExceedsUnits {
        /// Configured maximum cycle length.
        l_max: u32,
        /// Number of time units in the database.
        num_units: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidSupport(x) => {
                write!(f, "minimum support {x} must lie in [0, 1]")
            }
            ConfigError::InvalidConfidence(x) => {
                write!(f, "minimum confidence {x} must lie in [0, 1]")
            }
            ConfigError::InvalidBounds { lo, hi } => {
                write!(f, "cycle bounds [{lo},{hi}] must satisfy 1 <= l_min <= l_max")
            }
            ConfigError::EmptyDatabase => {
                write!(f, "database has no time units")
            }
            ConfigError::CycleBoundExceedsUnits { l_max, num_units } => write!(
                f,
                "maximum cycle length {l_max} exceeds the {num_units} observed time units; \
                 cycles longer than the window are unobservable"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let c = MiningConfig::builder().build().unwrap();
        assert_eq!(c.min_support, MinSupport::Fraction(0.05));
        assert_eq!(c.min_confidence.value(), 0.6);
        assert_eq!(c.cycle_bounds, CycleBounds::make(2, 16));
        assert_eq!(c.max_itemset_size, None);
    }

    #[test]
    fn builder_rejects_bad_values() {
        assert_eq!(
            MiningConfig::builder().min_support_fraction(1.5).build(),
            Err(ConfigError::InvalidSupport(1.5))
        );
        assert_eq!(
            MiningConfig::builder().min_confidence(-0.2).build(),
            Err(ConfigError::InvalidConfidence(-0.2))
        );
        assert_eq!(
            MiningConfig::builder().cycle_bounds(5, 2).build(),
            Err(ConfigError::InvalidBounds { lo: 5, hi: 2 })
        );
        assert_eq!(
            MiningConfig::builder().cycle_bounds(0, 2).build(),
            Err(ConfigError::InvalidBounds { lo: 0, hi: 2 })
        );
    }

    #[test]
    fn count_support_overrides_fraction() {
        let c = MiningConfig::builder()
            .min_support_fraction(0.5)
            .min_support_count(3)
            .build()
            .unwrap();
        assert_eq!(c.min_support, MinSupport::Count(3));
    }

    #[test]
    fn validate_for_checks_window() {
        let c = MiningConfig::builder().cycle_bounds(2, 8).build().unwrap();
        assert!(c.validate_for(8).is_ok());
        assert!(c.validate_for(16).is_ok());
        assert_eq!(
            c.validate_for(7),
            Err(ConfigError::CycleBoundExceedsUnits { l_max: 8, num_units: 7 })
        );
        assert_eq!(c.validate_for(0), Err(ConfigError::EmptyDatabase));
    }

    #[test]
    fn error_display() {
        let e = ConfigError::CycleBoundExceedsUnits { l_max: 9, num_units: 4 };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("4"));
    }

    #[test]
    fn partial_eq_for_config_error_handles_floats() {
        assert_eq!(ConfigError::InvalidSupport(0.5), ConfigError::InvalidSupport(0.5));
        assert_ne!(ConfigError::InvalidSupport(0.5), ConfigError::InvalidConfidence(0.5));
    }
}
