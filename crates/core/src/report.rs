//! Structured summaries of mining outcomes.
//!
//! A mining run over real data easily returns thousands of cyclic rules
//! (EXPERIMENTS.md's base workload yields ~6000). This module condenses
//! an outcome for human consumption: a histogram of minimal cycle
//! lengths, and the rules ranked by **coverage** — the fraction of the
//! window's units that lie on at least one of the rule's minimal cycles.
//! A rule holding every other day (coverage 0.5) outranks one holding
//! every 12th day (coverage ~0.08); both outrank a pattern confirmed on
//! a single long cycle.

use std::fmt::Write as _;

use car_cycles::BitSeq;

use crate::result::{CyclicRule, MiningOutcome};

/// A rule with its coverage score.
#[derive(Clone, Debug, PartialEq)]
pub struct RankedRule {
    /// The rule and its minimal cycles.
    pub rule: CyclicRule,
    /// Fraction of time units on at least one minimal cycle, in `(0, 1]`.
    pub coverage: f64,
}

/// A condensed view of one mining outcome.
#[derive(Clone, Debug)]
pub struct MiningReport {
    /// Number of time units the outcome was mined over.
    pub num_units: usize,
    /// Total number of cyclic rules.
    pub num_rules: usize,
    /// `(cycle length, number of rules with a minimal cycle of that
    /// length)`, ascending by length. A rule with minimal cycles of two
    /// lengths counts once per length.
    pub rules_by_cycle_length: Vec<(u32, usize)>,
    /// The rules with the highest coverage, descending (ties broken by
    /// rule order).
    pub top_rules: Vec<RankedRule>,
}

impl MiningReport {
    /// Builds a report from an outcome mined over `num_units` units,
    /// keeping the `top_k` highest-coverage rules.
    ///
    /// # Panics
    ///
    /// Panics if `num_units == 0` and the outcome contains rules (an
    /// impossible combination for the miners in this workspace).
    pub fn new(outcome: &MiningOutcome, num_units: usize, top_k: usize) -> Self {
        assert!(
            outcome.rules.is_empty() || num_units > 0,
            "rules cannot exist over zero units"
        );
        let mut by_length: Vec<(u32, usize)> = Vec::new();
        let mut ranked: Vec<RankedRule> = Vec::with_capacity(outcome.rules.len());
        for rule in &outcome.rules {
            let mut lengths: Vec<u32> = rule.cycles.iter().map(|c| c.length()).collect();
            lengths.sort_unstable();
            lengths.dedup();
            for l in lengths {
                match by_length.binary_search_by_key(&l, |&(len, _)| len) {
                    Ok(i) => by_length[i].1 += 1,
                    Err(i) => by_length.insert(i, (l, 1)),
                }
            }
            ranked.push(RankedRule {
                rule: rule.clone(),
                coverage: coverage(rule, num_units),
            });
        }
        ranked.sort_by(|a, b| {
            b.coverage
                .partial_cmp(&a.coverage)
                .expect("coverage is never NaN")
                .then_with(|| a.rule.cmp(&b.rule))
        });
        ranked.truncate(top_k);
        MiningReport {
            num_units,
            num_rules: outcome.rules.len(),
            rules_by_cycle_length: by_length,
            top_rules: ranked,
        }
    }

    /// Renders the report as a fixed-width text block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} cyclic rules over {} units",
            self.num_rules, self.num_units
        );
        if !self.rules_by_cycle_length.is_empty() {
            let _ = writeln!(out, "rules per minimal cycle length:");
            for &(l, count) in &self.rules_by_cycle_length {
                let _ = writeln!(out, "  l={l:<4} {count}");
            }
        }
        if !self.top_rules.is_empty() {
            let _ = writeln!(out, "top rules by coverage:");
            for r in &self.top_rules {
                let _ = writeln!(out, "  {:>5.1}%  {}", r.coverage * 100.0, r.rule);
            }
        }
        out
    }
}

/// Fraction of `0..num_units` lying on at least one minimal cycle of the
/// rule.
fn coverage(rule: &CyclicRule, num_units: usize) -> f64 {
    if num_units == 0 {
        return 0.0;
    }
    let mut covered = BitSeq::zeros(num_units);
    for cycle in &rule.cycles {
        for u in cycle.units(num_units) {
            covered.set(u, true);
        }
    }
    covered.count_ones() as f64 / num_units as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::MiningStats;
    use car_apriori::Rule;
    use car_cycles::Cycle;
    use car_itemset::ItemSet;

    fn rule(a: u32, b: u32, cycles: &[(u32, u32)]) -> CyclicRule {
        CyclicRule {
            rule: Rule::new(ItemSet::from_ids([a]), ItemSet::from_ids([b])).unwrap(),
            cycles: cycles.iter().map(|&(l, o)| Cycle::make(l, o)).collect(),
        }
    }

    fn outcome(rules: Vec<CyclicRule>) -> MiningOutcome {
        MiningOutcome { rules, stats: MiningStats::default() }
    }

    #[test]
    fn coverage_is_exact() {
        // (2,0) over 8 units covers 4/8; adding (4,1) covers +2.
        let r = rule(1, 2, &[(2, 0), (4, 1)]);
        assert!((coverage(&r, 8) - 0.75).abs() < 1e-12);
        let solo = rule(1, 2, &[(8, 3)]);
        assert!((coverage(&solo, 8) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn ranking_prefers_higher_coverage() {
        let o = outcome(vec![
            rule(1, 2, &[(8, 0)]),         // coverage 1/8
            rule(3, 4, &[(2, 1)]),         // coverage 1/2
            rule(5, 6, &[(4, 0), (4, 2)]), // coverage 1/2
        ]);
        let report = MiningReport::new(&o, 8, 10);
        assert_eq!(report.num_rules, 3);
        assert!((report.top_rules[0].coverage - 0.5).abs() < 1e-12);
        // Ties broken by rule order: {3}=>{4} sorts before {5}=>{6}.
        assert_eq!(report.top_rules[0].rule.rule.antecedent, ItemSet::from_ids([3]));
        assert_eq!(report.top_rules[2].rule.rule.antecedent, ItemSet::from_ids([1]));
    }

    #[test]
    fn top_k_truncates() {
        let o = outcome((0..10).map(|i| rule(i, i + 100, &[(2, 0)])).collect());
        let report = MiningReport::new(&o, 4, 3);
        assert_eq!(report.num_rules, 10);
        assert_eq!(report.top_rules.len(), 3);
    }

    #[test]
    fn histogram_counts_lengths_once_per_rule() {
        let o =
            outcome(vec![rule(1, 2, &[(2, 0), (2, 1), (3, 0)]), rule(3, 4, &[(3, 1)])]);
        let report = MiningReport::new(&o, 6, 10);
        assert_eq!(report.rules_by_cycle_length, vec![(2, 1), (3, 2)]);
    }

    #[test]
    fn render_contains_key_lines() {
        let o = outcome(vec![rule(1, 2, &[(2, 0)])]);
        let text = MiningReport::new(&o, 6, 5).render();
        assert!(text.contains("1 cyclic rules over 6 units"), "{text}");
        assert!(text.contains("l=2"), "{text}");
        assert!(text.contains("{1} => {2}"), "{text}");
        assert!(text.contains("50.0%"), "{text}");
    }

    #[test]
    fn empty_outcome() {
        let report = MiningReport::new(&outcome(Vec::new()), 0, 5);
        assert_eq!(report.num_rules, 0);
        assert!(report.top_rules.is_empty());
        assert!(report.rules_by_cycle_length.is_empty());
        assert!(report.render().contains("0 cyclic rules"));
    }
}
