//! Sliding-window cyclic rule mining.
//!
//! [`IncrementalMiner`](crate::incremental::IncrementalMiner) grows its
//! window forever, which is right for bounded histories but wrong for
//! long-running streams where only the recent past matters (cyclic
//! behaviour itself drifts: last year's weekly pattern may be gone).
//! [`SlidingWindowMiner`] keeps the most recent `window` time units:
//! each arriving unit is mined once, units older than the window are
//! evicted, and queries see a database of exactly the retained units,
//! re-indexed so the oldest retained unit is unit 0.
//!
//! # Query fast path
//!
//! Cycle state is maintained *online*: every push folds the unit's
//! held rules into per-rule [`OnlineRuleCycles`] counters (the paper's
//! cycle-elimination rule, incrementally — a miss at unit `u` kills
//! candidates `(l, u mod l)`, expressed here as a hold-count falling
//! behind the class total), and eviction re-anchors by decrementing
//! counters rather than re-detecting. A default-confidence query
//! ([`query_rules`](SlidingWindowMiner::query_rules) with `None`) is
//! therefore a read of already-maintained state — assembled once after
//! each ingest, memoised as a shared [`RuleView`], and handed out by
//! `Arc` clone until the next push invalidates it. Escalated-confidence
//! queries (`Some(q)` above the mining threshold) change which units
//! count as holds, so they bypass the online state and re-detect — in
//! parallel, via [`detect_cycles_batch`].
//!
//! Results are identical to batch-mining the retained units
//! (equivalence property-tested), with per-unit mining work paid once
//! per unit — eviction never requires re-mining because per-unit rule
//! sets are cached verbatim.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use car_apriori::hash::FastHashMap;
use car_apriori::{generate_rules, Apriori, AprioriConfig, MinConfidence, Rule};
use car_cycles::{detect_cycles_batch, minimal_cycles, BitSeq, OnlineRuleCycles};
use car_itemset::ItemSet;

use crate::config::{ConfigError, MiningConfig};
use crate::result::{CyclicRule, RuleView};

/// How often (in retained units scanned) the escalated query path
/// re-reads the clock against its deadline. Coarse on purpose: a clock
/// read per unit would dominate the per-unit filter work for small
/// windows. Must stay a power of two — the check masks rather than
/// divides.
const DEADLINE_CHECK_UNITS: usize = 64;

/// A rule that held in one retained unit, with the counts needed to
/// re-evaluate its confidence at query time.
#[derive(Clone, Debug)]
struct HeldRule {
    rule: Rule,
    /// Transactions of the unit containing antecedent ∪ consequent.
    rule_count: u64,
    /// Transactions of the unit containing the antecedent.
    antecedent_count: u64,
}

/// A cyclic rule miner over the most recent `window` time units.
///
/// ```
/// use car_core::window::SlidingWindowMiner;
/// use car_core::MiningConfig;
/// use car_itemset::ItemSet;
///
/// let config = MiningConfig::builder()
///     .min_support_fraction(0.5)
///     .min_confidence(0.5)
///     .cycle_bounds(2, 2)
///     .build()
///     .unwrap();
/// let mut miner = SlidingWindowMiner::new(config, 6).unwrap();
/// for day in 0..20 {
///     let unit = if day % 2 == 0 {
///         vec![ItemSet::from_ids([1, 2]); 4]
///     } else {
///         vec![ItemSet::from_ids([9]); 4]
///     };
///     miner.push_unit(&unit);
/// }
/// // Only the last 6 units are considered.
/// assert_eq!(miner.len(), 6);
/// let rules = miner.current_rules().unwrap();
/// assert!(rules.iter().any(|r| r.rule.to_string() == "{1} => {2}"));
/// ```
pub struct SlidingWindowMiner {
    config: MiningConfig,
    apriori: Apriori,
    window: usize,
    /// Per retained unit (oldest first): the rules that held there, with
    /// the counts backing their confidence.
    unit_rules: VecDeque<Vec<HeldRule>>,
    /// Per retained unit (oldest first): the frequent single items and
    /// their support counts, sorted by item id. This is the compact
    /// per-shard summary the cluster router merges — item partitioning
    /// makes per-item counts exact under concatenation.
    unit_items: VecDeque<Vec<(u32, u64)>>,
    /// Per-rule online cycle-candidate state in absolute coordinates;
    /// rules with no retained hold are removed.
    online: FastHashMap<Rule, OnlineRuleCycles>,
    /// Memoised `query_rules(None)` view; cleared by every push. A
    /// `Mutex` (not `RwLock`) because fills are rare and reads clone an
    /// `Arc` in nanoseconds.
    view: Mutex<Option<RuleView>>,
    /// Total units ever pushed (for diagnostics).
    total_pushed: u64,
}

impl SlidingWindowMiner {
    /// Creates a miner retaining the last `window` units.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::CycleBoundExceedsUnits`] when the window is
    /// shorter than the configuration's `l_max` — such a window could
    /// never confirm the longest requested cycles.
    pub fn new(config: MiningConfig, window: usize) -> Result<Self, ConfigError> {
        config.validate_for(window)?;
        let mut apriori_config =
            AprioriConfig::new(config.min_support).with_counting(config.counting);
        if let Some(cap) = config.max_itemset_size {
            apriori_config = apriori_config.with_max_size(cap);
        }
        Ok(SlidingWindowMiner {
            config,
            apriori: Apriori::new(apriori_config),
            window,
            unit_rules: VecDeque::with_capacity(window + 1),
            unit_items: VecDeque::with_capacity(window + 1),
            online: FastHashMap::default(),
            view: Mutex::new(None),
            total_pushed: 0,
        })
    }

    /// The configured window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of units currently retained (`≤ window`).
    pub fn len(&self) -> usize {
        self.unit_rules.len()
    }

    /// Whether no units have been retained yet.
    pub fn is_empty(&self) -> bool {
        self.unit_rules.is_empty()
    }

    /// Total units ever pushed, including evicted ones.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Units evicted from the window so far.
    pub fn evictions(&self) -> u64 {
        self.total_pushed - self.unit_rules.len() as u64
    }

    /// Total `(rule, unit)` hold entries currently retained — the
    /// working-set size a serving layer reports as a gauge.
    pub fn retained_rule_entries(&self) -> usize {
        self.unit_rules.iter().map(Vec::len).sum()
    }

    /// Distinct rules with online cycle state (held in ≥ 1 retained
    /// unit).
    pub fn tracked_rules(&self) -> usize {
        self.online.len()
    }

    /// Aggregated support counts of the frequent single items across
    /// the retained window, sorted by item id. Items infrequent in a
    /// unit contribute nothing for that unit (mirroring what the
    /// per-unit miner retains). This is the compact summary a shard
    /// worker exposes for the router's cluster-wide item merge: shards
    /// partition the *transaction* space per unit, so per-item sums
    /// concatenate exactly.
    pub fn item_supports(&self) -> Vec<(u32, u64)> {
        let mut totals: FastHashMap<u32, u64> = FastHashMap::default();
        for unit in &self.unit_items {
            for &(id, count) in unit {
                let slot = totals.entry(id).or_insert(0);
                *slot = slot.saturating_add(count);
            }
        }
        let mut out: Vec<(u32, u64)> = totals.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Ingests the next unit, evicting the oldest once the window is
    /// full. Returns the number of units evicted (0 or 1).
    pub fn push_unit(&mut self, transactions: &[ItemSet]) -> usize {
        let _span = car_obs::time_span!("window.push_unit");
        let frequent = self.apriori.mine(transactions);
        // Frequent single items of this unit, kept as the compact
        // per-unit summary behind `item_supports`.
        let mut items: Vec<(u32, u64)> = frequent
            .level(1)
            .filter_map(|(s, c)| s.as_slice().first().map(|item| (item.id(), c)))
            .collect();
        items.sort_unstable();
        let rules: Vec<HeldRule> = generate_rules(&frequent, self.config.min_confidence)
            .into_iter()
            .map(|r| HeldRule {
                rule: r.rule,
                rule_count: r.rule_count,
                antecedent_count: r.antecedent_count,
            })
            .collect();
        // Fold this unit's holds into the online cycle state. Rules
        // absent from the unit need no visit: their hold counts simply
        // fall behind the growing class totals, which *is* the cycle
        // elimination (see `OnlineRuleCycles`).
        let abs_unit = self.total_pushed;
        for held in &rules {
            match self.online.get_mut(&held.rule) {
                Some(state) => state.record_hold(abs_unit),
                None => {
                    let mut state = OnlineRuleCycles::new(self.config.cycle_bounds);
                    state.record_hold(abs_unit);
                    self.online.insert(held.rule.clone(), state);
                }
            }
        }
        car_obs::counters::MINE.add_online_holds(rules.len() as u64);
        self.unit_rules.push_back(rules);
        self.unit_items.push_back(items);
        self.total_pushed += 1;
        let evicted = if self.unit_rules.len() > self.window {
            // The evicted unit's absolute index: the retained range
            // before popping is `(abs_unit - window) ..= abs_unit`.
            let abs_evicted = abs_unit - self.window as u64;
            self.unit_items.pop_front();
            if let Some(old) = self.unit_rules.pop_front() {
                for held in &old {
                    let drop_rule = match self.online.get_mut(&held.rule) {
                        Some(state) => {
                            state.record_evict(abs_evicted);
                            state.is_empty()
                        }
                        None => false,
                    };
                    if drop_rule {
                        self.online.remove(&held.rule);
                    }
                }
            }
            1
        } else {
            0
        };
        *self.view_slot() = None;
        evicted
    }

    /// The cyclic rules over the retained window, with unit 0 the oldest
    /// retained unit — identical to batch-mining those units.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] while fewer than `l_max` units are
    /// retained.
    pub fn current_rules(&self) -> Result<RuleView, ConfigError> {
        self.query_rules(None)
    }

    /// The cyclic rules over the retained window, optionally re-evaluated
    /// at a *stricter* minimum confidence than the mining configuration.
    ///
    /// With `None` (or a `q` at or below the configured threshold — a
    /// no-op, since rules below the mining threshold were never cached),
    /// this is the fast path: a clone of the memoised [`RuleView`]
    /// assembled from online cycle state, costing an `Arc` bump after
    /// the first query per ingest. With `Some(q)` above the threshold,
    /// which units count as holds changes, so the online state does not
    /// apply: the rule sequences are rebuilt under `q` and re-detected
    /// in parallel via [`detect_cycles_batch`] — identical to
    /// batch-mining the retained window at confidence `q`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] while fewer than `l_max` units are
    /// retained.
    pub fn query_rules(
        &self,
        min_confidence: Option<MinConfidence>,
    ) -> Result<RuleView, ConfigError> {
        // No deadline: `query_rules_within` with `None` never aborts.
        match self.query_rules_within(min_confidence, None)? {
            Some(view) => Ok(view),
            // Unreachable without a deadline; kept total rather than
            // panicking.
            None => Ok(Arc::new(Vec::new())),
        }
    }

    /// [`query_rules`](Self::query_rules) with a hard deadline on the
    /// escalated (re-detection) path. Returns `Ok(None)` when the
    /// deadline expired before the view was assembled — the serving
    /// tier answers `504 deadline_exceeded` — and `Ok(Some(view))`
    /// otherwise. The fast path never checks the deadline: a memoised
    /// `Arc` clone is cheaper than reading the clock.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] while fewer than `l_max` units are
    /// retained.
    pub fn query_rules_within(
        &self,
        min_confidence: Option<MinConfidence>,
        deadline: Option<Instant>,
    ) -> Result<Option<RuleView>, ConfigError> {
        let escalated =
            min_confidence.filter(|q| q.value() > self.config.min_confidence.value());
        match escalated {
            None => self.query_fast().map(Some),
            Some(q) => self.query_detect(q, deadline),
        }
    }

    /// Fast path: memoised view over online cycle state.
    fn query_fast(&self) -> Result<RuleView, ConfigError> {
        let _span = car_obs::time_span!("window.query_rules.fast");
        self.config.validate_for(self.unit_rules.len())?;
        let mut slot = self.view_slot();
        if let Some(view) = slot.as_ref() {
            return Ok(Arc::clone(view));
        }
        let view: RuleView = Arc::new(self.assemble_from_online());
        *slot = Some(Arc::clone(&view));
        Ok(view)
    }

    /// Rebuilds the default-confidence result directly from online
    /// cycle state, bypassing the memoised view — the cost
    /// `query_rules(None)` pays only on the first query after an
    /// ingest. Exposed so benchmarks can measure the online-assembly
    /// path in isolation from memoisation.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] while fewer than `l_max` units are
    /// retained.
    pub fn assemble_view(&self) -> Result<RuleView, ConfigError> {
        self.config.validate_for(self.unit_rules.len())?;
        Ok(Arc::new(self.assemble_from_online()))
    }

    /// Escalated path: rebuild sequences under `q`, re-detect in
    /// parallel. Aborts with `Ok(None)` if `deadline` passes before
    /// re-detection starts; the deadline is checked at entry, every
    /// [`DEADLINE_CHECK_UNITS`] units of the sequence rebuild, and once
    /// more before the (parallel, unabortable) batch detection.
    fn query_detect(
        &self,
        q: MinConfidence,
        deadline: Option<Instant>,
    ) -> Result<Option<RuleView>, ConfigError> {
        let _span = car_obs::time_span!("window.query_rules.detect");
        let n = self.unit_rules.len();
        self.config.validate_for(n)?;
        let expired = |on: bool| on && deadline.is_some_and(|d| Instant::now() >= d);
        if expired(true) {
            return Ok(None);
        }
        let mut sequences: FastHashMap<&Rule, BitSeq> = FastHashMap::default();
        for (u, rules) in self.unit_rules.iter().enumerate() {
            if expired(u & (DEADLINE_CHECK_UNITS - 1) == 0) {
                return Ok(None);
            }
            for held in rules {
                if !q.accepts(held.rule_count, held.antecedent_count) {
                    continue;
                }
                sequences
                    .entry(&held.rule)
                    .or_insert_with(|| BitSeq::zeros(n))
                    .set(u, true);
            }
        }
        if expired(true) {
            return Ok(None);
        }
        let (rules, seqs): (Vec<&Rule>, Vec<BitSeq>) = sequences.into_iter().unzip();
        let sets = detect_cycles_batch(&seqs, self.config.cycle_bounds, 0);
        let mut out: Vec<CyclicRule> = Vec::new();
        for (rule, set) in rules.into_iter().zip(sets) {
            if set.is_empty() {
                continue;
            }
            out.push(CyclicRule { rule: rule.clone(), cycles: minimal_cycles(&set) });
        }
        out.sort();
        Ok(Some(Arc::new(out)))
    }

    /// Materialises the current window's cyclic rules from the online
    /// per-rule counters (no bit sequences, no re-detection).
    fn assemble_from_online(&self) -> Vec<CyclicRule> {
        let n = self.unit_rules.len();
        let base = self.total_pushed.saturating_sub(n as u64);
        let candidates = self.config.cycle_bounds.num_cycles() as u64;
        let mut eliminated: u64 = 0;
        let mut out: Vec<CyclicRule> = Vec::with_capacity(self.online.len());
        for (rule, state) in &self.online {
            let live = state.live_cycles(base, n);
            eliminated =
                eliminated.saturating_add(candidates.saturating_sub(live.len() as u64));
            if live.is_empty() {
                continue;
            }
            out.push(CyclicRule { rule: rule.clone(), cycles: minimal_cycles(&live) });
        }
        if eliminated > 0 {
            car_obs::counters::MINE.add_online_eliminations(eliminated);
        }
        out.sort();
        out
    }

    /// The memoised-view slot, recovering from (impossible in practice)
    /// poisoning: the view is pure derived data, so a poisoned slot is
    /// safe to reuse or overwrite.
    fn view_slot(&self) -> MutexGuard<'_, Option<RuleView>> {
        self.view.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::mine_sequential;
    use car_itemset::SegmentedDb;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    fn config(l_max: u32) -> MiningConfig {
        MiningConfig::builder()
            .min_support_fraction(0.5)
            .min_confidence(0.5)
            .cycle_bounds(2, l_max)
            .build()
            .unwrap()
    }

    fn unit_for(day: usize) -> Vec<ItemSet> {
        if day % 2 == 0 {
            vec![set(&[1, 2]); 4]
        } else {
            vec![set(&[7]); 4]
        }
    }

    #[test]
    fn window_shorter_than_l_max_is_rejected() {
        assert!(SlidingWindowMiner::new(config(8), 4).is_err());
        assert!(SlidingWindowMiner::new(config(4), 4).is_ok());
    }

    #[test]
    fn matches_batch_on_retained_window() {
        let cfg = config(3);
        let mut miner = SlidingWindowMiner::new(cfg, 6).unwrap();
        let mut history: Vec<Vec<ItemSet>> = Vec::new();
        for day in 0..15 {
            history.push(unit_for(day));
            let evicted = miner.push_unit(&history[day]);
            assert_eq!(evicted, usize::from(day >= 6));
            if miner.len() >= 3 {
                let start = history.len().saturating_sub(6);
                let window_db =
                    SegmentedDb::from_unit_itemsets(history[start..].to_vec());
                let batch = mine_sequential(&window_db, &cfg).unwrap();
                assert_eq!(
                    *miner.current_rules().unwrap(),
                    batch.rules,
                    "after day {day}"
                );
                // The uncached rebuild must agree with the memoised view.
                assert_eq!(*miner.assemble_view().unwrap(), batch.rules);
            }
        }
        assert_eq!(miner.total_pushed(), 15);
        assert_eq!(miner.len(), 6);
    }

    #[test]
    fn repeated_queries_share_the_memoised_view() {
        let mut miner = SlidingWindowMiner::new(config(2), 4).unwrap();
        for day in 0..4 {
            miner.push_unit(&unit_for(day));
        }
        let first = miner.current_rules().unwrap();
        let second = miner.current_rules().unwrap();
        assert!(Arc::ptr_eq(&first, &second), "same epoch must share one view");
        miner.push_unit(&unit_for(4));
        let third = miner.current_rules().unwrap();
        assert!(!Arc::ptr_eq(&first, &third), "push must invalidate the view");
    }

    #[test]
    fn escalated_query_matches_batch_at_that_confidence() {
        // Units where {1} => {2} holds at confidence 2/3: two {1,2}
        // transactions and one {1} without 2.
        let strong = vec![set(&[1, 2]), set(&[1, 2]), set(&[1, 2])];
        let weak = vec![set(&[1, 2]), set(&[1, 2]), set(&[1])];
        let cfg = config(2);
        let mut miner = SlidingWindowMiner::new(cfg, 6).unwrap();
        let mut history: Vec<Vec<ItemSet>> = Vec::new();
        for day in 0..6 {
            let unit = if day % 2 == 0 { strong.clone() } else { weak.clone() };
            history.push(unit.clone());
            miner.push_unit(&unit);
        }
        let strict = MinConfidence::new(0.9).unwrap();
        let served = miner.query_rules(Some(strict)).unwrap();
        let strict_cfg = MiningConfig::builder()
            .min_support_fraction(0.5)
            .min_confidence(0.9)
            .cycle_bounds(2, 2)
            .build()
            .unwrap();
        let batch =
            mine_sequential(&SegmentedDb::from_unit_itemsets(history), &strict_cfg)
                .unwrap();
        assert_eq!(*served, batch.rules);
        // The weak units fail 0.9, so {1} => {2} should alternate -> (2, 0).
        assert!(served.iter().any(|r| r.rule.to_string() == "{1} => {2}"
            && r.cycles.iter().any(|c| (c.length(), c.offset()) == (2, 0))));
    }

    #[test]
    fn expired_deadline_aborts_escalated_query_only() {
        let mut miner = SlidingWindowMiner::new(config(2), 4).unwrap();
        for day in 0..4 {
            miner.push_unit(&unit_for(day));
        }
        let past = Instant::now() - std::time::Duration::from_millis(10);
        let strict = MinConfidence::new(0.9).unwrap();
        // Escalated path honours the deadline...
        assert!(miner.query_rules_within(Some(strict), Some(past)).unwrap().is_none());
        // ...the fast path never does (memoised view is cheaper than a
        // clock read)...
        assert!(miner.query_rules_within(None, Some(past)).unwrap().is_some());
        // ...and a generous deadline matches the undeadlined answer.
        let far = Instant::now() + std::time::Duration::from_secs(60);
        let within = miner.query_rules_within(Some(strict), Some(far)).unwrap();
        let plain = miner.query_rules(Some(strict)).unwrap();
        assert_eq!(*within.unwrap(), *plain);
    }

    #[test]
    fn pattern_drift_is_forgotten() {
        let cfg = config(2);
        let mut miner = SlidingWindowMiner::new(cfg, 4).unwrap();
        // Phase 1: alternating {1,2} pattern.
        for day in 0..8 {
            miner.push_unit(&unit_for(day));
        }
        assert!(miner
            .current_rules()
            .unwrap()
            .iter()
            .any(|r| r.rule.to_string() == "{1} => {2}"));
        // Phase 2: the pattern stops; after `window` quiet units it must
        // vanish from the results — and its online state must be dropped.
        for _ in 0..4 {
            miner.push_unit(&vec![set(&[7]); 4]);
        }
        assert!(miner
            .current_rules()
            .unwrap()
            .iter()
            .all(|r| r.rule.to_string() != "{1} => {2}"));
        // Single-item {7} units generate no rules, so once the pattern
        // units slide out the online state must be fully reclaimed.
        assert_eq!(miner.tracked_rules(), 0);
    }

    #[test]
    fn item_supports_track_the_retained_window() {
        let mut miner = SlidingWindowMiner::new(config(2), 4).unwrap();
        for day in 0..4 {
            miner.push_unit(&unit_for(day));
        }
        // Two {1,2} units (4 tx each) and two {7} units retained.
        assert_eq!(miner.item_supports(), vec![(1, 8), (2, 8), (7, 8)]);
        // Slide the {1,2} pattern out entirely.
        for _ in 0..4 {
            miner.push_unit(&vec![set(&[7]); 4]);
        }
        assert_eq!(miner.item_supports(), vec![(7, 16)]);
    }

    #[test]
    fn too_few_units_is_an_error() {
        let miner = SlidingWindowMiner::new(config(3), 5).unwrap();
        assert!(miner.current_rules().is_err());
        assert!(miner.is_empty());
    }
}
