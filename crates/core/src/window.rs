//! Sliding-window cyclic rule mining.
//!
//! [`IncrementalMiner`](crate::incremental::IncrementalMiner) grows its
//! window forever, which is right for bounded histories but wrong for
//! long-running streams where only the recent past matters (cyclic
//! behaviour itself drifts: last year's weekly pattern may be gone).
//! [`SlidingWindowMiner`] keeps the most recent `window` time units:
//! each arriving unit is mined once, units older than the window are
//! evicted, and queries see a database of exactly the retained units,
//! re-indexed so the oldest retained unit is unit 0.
//!
//! Results are identical to batch-mining the retained window
//! (equivalence-tested), with per-unit mining work paid once per unit —
//! eviction never requires re-mining because per-unit rule sets are
//! cached verbatim.

use std::collections::VecDeque;

use car_apriori::hash::FastHashMap;
use car_apriori::{generate_rules, Apriori, AprioriConfig, MinConfidence, Rule};
use car_cycles::{detect_cycles, minimal_cycles, BitSeq};
use car_itemset::ItemSet;

use crate::config::{ConfigError, MiningConfig};
use crate::result::CyclicRule;

/// A rule that held in one retained unit, with the counts needed to
/// re-evaluate its confidence at query time.
#[derive(Clone, Debug)]
struct HeldRule {
    rule: Rule,
    /// Transactions of the unit containing antecedent ∪ consequent.
    rule_count: u64,
    /// Transactions of the unit containing the antecedent.
    antecedent_count: u64,
}

/// A cyclic rule miner over the most recent `window` time units.
///
/// ```
/// use car_core::window::SlidingWindowMiner;
/// use car_core::MiningConfig;
/// use car_itemset::ItemSet;
///
/// let config = MiningConfig::builder()
///     .min_support_fraction(0.5)
///     .min_confidence(0.5)
///     .cycle_bounds(2, 2)
///     .build()
///     .unwrap();
/// let mut miner = SlidingWindowMiner::new(config, 6).unwrap();
/// for day in 0..20 {
///     let unit = if day % 2 == 0 {
///         vec![ItemSet::from_ids([1, 2]); 4]
///     } else {
///         vec![ItemSet::from_ids([9]); 4]
///     };
///     miner.push_unit(&unit);
/// }
/// // Only the last 6 units are considered.
/// assert_eq!(miner.len(), 6);
/// let rules = miner.current_rules().unwrap();
/// assert!(rules.iter().any(|r| r.rule.to_string() == "{1} => {2}"));
/// ```
pub struct SlidingWindowMiner {
    config: MiningConfig,
    apriori: Apriori,
    window: usize,
    /// Per retained unit (oldest first): the rules that held there, with
    /// the counts backing their confidence.
    unit_rules: VecDeque<Vec<HeldRule>>,
    /// Total units ever pushed (for diagnostics).
    total_pushed: u64,
}

impl SlidingWindowMiner {
    /// Creates a miner retaining the last `window` units.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::CycleBoundExceedsUnits`] when the window is
    /// shorter than the configuration's `l_max` — such a window could
    /// never confirm the longest requested cycles.
    pub fn new(config: MiningConfig, window: usize) -> Result<Self, ConfigError> {
        config.validate_for(window)?;
        let mut apriori_config =
            AprioriConfig::new(config.min_support).with_counting(config.counting);
        if let Some(cap) = config.max_itemset_size {
            apriori_config = apriori_config.with_max_size(cap);
        }
        Ok(SlidingWindowMiner {
            config,
            apriori: Apriori::new(apriori_config),
            window,
            unit_rules: VecDeque::with_capacity(window + 1),
            total_pushed: 0,
        })
    }

    /// The configured window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of units currently retained (`≤ window`).
    pub fn len(&self) -> usize {
        self.unit_rules.len()
    }

    /// Whether no units have been retained yet.
    pub fn is_empty(&self) -> bool {
        self.unit_rules.is_empty()
    }

    /// Total units ever pushed, including evicted ones.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Units evicted from the window so far.
    pub fn evictions(&self) -> u64 {
        self.total_pushed - self.unit_rules.len() as u64
    }

    /// Total `(rule, unit)` hold entries currently retained — the
    /// working-set size a serving layer reports as a gauge.
    pub fn retained_rule_entries(&self) -> usize {
        self.unit_rules.iter().map(Vec::len).sum()
    }

    /// Ingests the next unit, evicting the oldest once the window is
    /// full. Returns the number of units evicted (0 or 1).
    pub fn push_unit(&mut self, transactions: &[ItemSet]) -> usize {
        let _span = car_obs::time_span!("window.push_unit");
        let frequent = self.apriori.mine(transactions);
        let rules: Vec<HeldRule> = generate_rules(&frequent, self.config.min_confidence)
            .into_iter()
            .map(|r| HeldRule {
                rule: r.rule,
                rule_count: r.rule_count,
                antecedent_count: r.antecedent_count,
            })
            .collect();
        self.unit_rules.push_back(rules);
        self.total_pushed += 1;
        if self.unit_rules.len() > self.window {
            self.unit_rules.pop_front();
            1
        } else {
            0
        }
    }

    /// The cyclic rules over the retained window, with unit 0 the oldest
    /// retained unit — identical to batch-mining those units.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] while fewer than `l_max` units are
    /// retained.
    pub fn current_rules(&self) -> Result<Vec<CyclicRule>, ConfigError> {
        self.query_rules(None)
    }

    /// The cyclic rules over the retained window, optionally re-evaluated
    /// at a *stricter* minimum confidence than the mining configuration.
    ///
    /// With `Some(q)` and `q` above the configured threshold, a rule
    /// counts as holding in a unit only when its cached per-unit counts
    /// pass `q` — identical to batch-mining the retained window at
    /// confidence `q`. A `q` at or below the configured threshold is a
    /// no-op (rules below the mining threshold were never cached).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] while fewer than `l_max` units are
    /// retained.
    pub fn query_rules(
        &self,
        min_confidence: Option<MinConfidence>,
    ) -> Result<Vec<CyclicRule>, ConfigError> {
        let _span = car_obs::time_span!("window.query_rules");
        let n = self.unit_rules.len();
        self.config.validate_for(n)?;
        let escalated =
            min_confidence.filter(|q| q.value() > self.config.min_confidence.value());
        let mut sequences: FastHashMap<&Rule, BitSeq> = FastHashMap::default();
        for (u, rules) in self.unit_rules.iter().enumerate() {
            for held in rules {
                if let Some(q) = escalated {
                    if !q.accepts(held.rule_count, held.antecedent_count) {
                        continue;
                    }
                }
                sequences
                    .entry(&held.rule)
                    .or_insert_with(|| BitSeq::zeros(n))
                    .set(u, true);
            }
        }
        let mut out: Vec<CyclicRule> = Vec::new();
        for (rule, seq) in sequences {
            let set = detect_cycles(&seq, self.config.cycle_bounds);
            if set.is_empty() {
                continue;
            }
            out.push(CyclicRule { rule: rule.clone(), cycles: minimal_cycles(&set) });
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::mine_sequential;
    use car_itemset::SegmentedDb;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    fn config(l_max: u32) -> MiningConfig {
        MiningConfig::builder()
            .min_support_fraction(0.5)
            .min_confidence(0.5)
            .cycle_bounds(2, l_max)
            .build()
            .unwrap()
    }

    fn unit_for(day: usize) -> Vec<ItemSet> {
        if day % 2 == 0 {
            vec![set(&[1, 2]); 4]
        } else {
            vec![set(&[7]); 4]
        }
    }

    #[test]
    fn window_shorter_than_l_max_is_rejected() {
        assert!(SlidingWindowMiner::new(config(8), 4).is_err());
        assert!(SlidingWindowMiner::new(config(4), 4).is_ok());
    }

    #[test]
    fn matches_batch_on_retained_window() {
        let cfg = config(3);
        let mut miner = SlidingWindowMiner::new(cfg, 6).unwrap();
        let mut history: Vec<Vec<ItemSet>> = Vec::new();
        for day in 0..15 {
            history.push(unit_for(day));
            let evicted = miner.push_unit(&history[day]);
            assert_eq!(evicted, usize::from(day >= 6));
            if miner.len() >= 3 {
                let start = history.len().saturating_sub(6);
                let window_db =
                    SegmentedDb::from_unit_itemsets(history[start..].to_vec());
                let batch = mine_sequential(&window_db, &cfg).unwrap();
                assert_eq!(
                    miner.current_rules().unwrap(),
                    batch.rules,
                    "after day {day}"
                );
            }
        }
        assert_eq!(miner.total_pushed(), 15);
        assert_eq!(miner.len(), 6);
    }

    #[test]
    fn pattern_drift_is_forgotten() {
        let cfg = config(2);
        let mut miner = SlidingWindowMiner::new(cfg, 4).unwrap();
        // Phase 1: alternating {1,2} pattern.
        for day in 0..8 {
            miner.push_unit(&unit_for(day));
        }
        assert!(miner
            .current_rules()
            .unwrap()
            .iter()
            .any(|r| r.rule.to_string() == "{1} => {2}"));
        // Phase 2: the pattern stops; after `window` quiet units it must
        // vanish from the results.
        for _ in 0..4 {
            miner.push_unit(&vec![set(&[7]); 4]);
        }
        assert!(miner
            .current_rules()
            .unwrap()
            .iter()
            .all(|r| r.rule.to_string() != "{1} => {2}"));
    }

    #[test]
    fn too_few_units_is_an_error() {
        let miner = SlidingWindowMiner::new(config(3), 5).unwrap();
        assert!(miner.current_rules().is_err());
        assert!(miner.is_empty());
    }
}
