//! Approximate cyclic association rules.
//!
//! The ICDE'98 paper notes that exact cycles are brittle: a single noisy
//! time unit (a stock-out, a holiday) destroys an otherwise clear weekly
//! pattern. This module implements the relaxation the paper sketches as
//! future work: a rule has an *approximate* cycle `(l, o)` when it holds
//! in all but at most `max_misses` of the units `i ≡ o (mod l)`.
//!
//! Mining follows the SEQUENTIAL shape (per-unit rule mining, then
//! sequence analysis) because approximate cycles sacrifice the eager
//! elimination the INTERLEAVED algorithm depends on: a miss no longer
//! kills a cycle, it only consumes budget.

use std::time::Instant;

use car_apriori::hash::FastHashMap;
use car_apriori::{generate_rules, Apriori, AprioriConfig, Rule};
use car_cycles::{detect_approx_cycles, ApproxCycle, BitSeq};
use car_itemset::SegmentedDb;

use crate::config::{ConfigError, MiningConfig};
use crate::result::MiningStats;

/// A rule together with its approximate cycles.
#[derive(Clone, Debug, PartialEq)]
pub struct ApproxCyclicRule {
    /// The association rule.
    pub rule: Rule,
    /// Approximate cycles within budget, sorted by `(length, offset)`.
    pub cycles: Vec<ApproxCycle>,
}

/// Result of an approximate mining run.
#[derive(Clone, Debug)]
pub struct ApproxOutcome {
    /// Rules with at least one approximate cycle.
    pub rules: Vec<ApproxCyclicRule>,
    /// Work counters (sequential-shaped).
    pub stats: MiningStats,
}

/// Mines rules with approximate cycles tolerating up to `max_misses`
/// misses per cycle.
///
/// With `max_misses == 0` the result contains exactly the rules of
/// [`mine_sequential`](crate::sequential::mine_sequential) (restricted to
/// non-vacuous cycles, which the exact miner's window validation already
/// guarantees), each with hit statistics attached.
///
/// # Errors
///
/// Returns a [`ConfigError`] when the configuration is invalid for the
/// database.
pub fn mine_approx(
    db: &SegmentedDb,
    config: &MiningConfig,
    max_misses: u32,
) -> Result<ApproxOutcome, ConfigError> {
    config.validate_for(db.num_units())?;
    let n = db.num_units();
    let mut stats = MiningStats {
        num_units: n,
        num_transactions: db.num_transactions(),
        ..Default::default()
    };

    let phase1_start = Instant::now();
    let mut sequences: FastHashMap<Rule, BitSeq> = FastHashMap::default();
    let mut apriori_config =
        AprioriConfig::new(config.min_support).with_counting(config.counting);
    if let Some(cap) = config.max_itemset_size {
        apriori_config = apriori_config.with_max_size(cap);
    }
    let apriori = Apriori::new(apriori_config);
    for (unit, transactions) in db.iter_units() {
        let (frequent, apriori_stats) = apriori.mine_with_stats(transactions);
        stats.support_computations += apriori_stats.candidates_counted;
        let rules = generate_rules(&frequent, config.min_confidence);
        stats.rules_checked += rules.len() as u64;
        for r in rules {
            sequences.entry(r.rule).or_insert_with(|| BitSeq::zeros(n)).set(unit, true);
        }
    }
    stats.phase1 = phase1_start.elapsed();

    let phase2_start = Instant::now();
    let mut rules: Vec<ApproxCyclicRule> = Vec::new();
    for (rule, seq) in sequences {
        let cycles = detect_approx_cycles(&seq, config.cycle_bounds, max_misses);
        if cycles.is_empty() {
            continue;
        }
        rules.push(ApproxCyclicRule { rule, cycles });
    }
    rules.sort_by(|a, b| a.rule.cmp(&b.rule));
    stats.phase2 = phase2_start.elapsed();

    Ok(ApproxOutcome { rules, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::mine_sequential;
    use car_itemset::ItemSet;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    /// An alternating pattern with one "noisy" unit (unit 4 breaks the
    /// even-unit pattern).
    fn noisy_db() -> SegmentedDb {
        let on = vec![set(&[1, 2]); 4];
        let off = vec![set(&[7]); 4];
        SegmentedDb::from_unit_itemsets(vec![
            on.clone(),
            off.clone(),
            on.clone(),
            off.clone(),
            off.clone(), // unit 4: pattern broken
            off.clone(),
            on,
            off,
        ])
    }

    fn config() -> MiningConfig {
        MiningConfig::builder()
            .min_support_fraction(0.5)
            .min_confidence(0.5)
            .cycle_bounds(2, 2)
            .build()
            .unwrap()
    }

    #[test]
    fn exact_mining_misses_noisy_cycle() {
        let exact = mine_sequential(&noisy_db(), &config()).unwrap();
        assert!(
            !exact
                .rules
                .iter()
                .any(|r| r.rule == Rule::new(set(&[1]), set(&[2])).unwrap()),
            "exact cycle must be broken by the noisy unit"
        );
    }

    #[test]
    fn approx_mining_recovers_noisy_cycle() {
        let outcome = mine_approx(&noisy_db(), &config(), 1).unwrap();
        let r = outcome
            .rules
            .iter()
            .find(|r| r.rule == Rule::new(set(&[1]), set(&[2])).unwrap())
            .expect("approximate cycle should tolerate one miss");
        let c20 = r
            .cycles
            .iter()
            .find(|c| (c.cycle.length(), c.cycle.offset()) == (2, 0))
            .expect("(2,0) within budget");
        assert_eq!(c20.misses, 1);
        assert_eq!(c20.occurrences, 4);
        assert!(!c20.is_exact());
    }

    #[test]
    fn zero_budget_matches_exact_rules() {
        let db = noisy_db();
        let cfg = config();
        let exact = mine_sequential(&db, &cfg).unwrap();
        let approx = mine_approx(&db, &cfg, 0).unwrap();
        let exact_rules: Vec<&Rule> = exact.rules.iter().map(|r| &r.rule).collect();
        let approx_rules: Vec<&Rule> = approx.rules.iter().map(|r| &r.rule).collect();
        assert_eq!(exact_rules, approx_rules);
        // And the exact cycles coincide with the zero-miss cycles.
        for (e, a) in exact.rules.iter().zip(&approx.rules) {
            let a_cycles: Vec<_> = a.cycles.iter().map(|c| c.cycle).collect();
            // Exact reports minimal cycles only; every one must appear in
            // the approximate (un-filtered) list.
            for c in &e.cycles {
                assert!(a_cycles.contains(c), "{c} missing from approx");
            }
            assert!(a.cycles.iter().all(|c| c.misses == 0));
        }
    }

    #[test]
    fn rejects_bad_window() {
        let db = SegmentedDb::from_unit_itemsets(vec![vec![set(&[1])]]);
        assert!(mine_approx(&db, &config(), 1).is_err());
    }
}
