//! # car-core — Cyclic Association Rules
//!
//! A faithful implementation of
//!
//! > Banu Özden, Sridhar Ramaswamy, Abraham Silberschatz.
//! > **"Cyclic Association Rules."** 14th International Conference on
//! > Data Engineering (ICDE), 1998.
//!
//! ## Problem
//!
//! A transaction database is partitioned into `n` equal **time units**
//! ([`car_itemset::SegmentedDb`]). An association rule `X ⇒ Y` *holds* in
//! unit `i` when `X ∪ Y` is large there (support ≥ `minsup`) and the
//! rule's confidence in that unit is at least `minconf`. The rule's
//! behaviour over time is a binary sequence; the rule is a **cyclic
//! association rule** when that sequence has a [`car_cycles::Cycle`]
//! `(l, o)` — it holds in *every* unit `i ≡ o (mod l)` — with `l` inside
//! the configured [`car_cycles::CycleBounds`].
//!
//! ## Algorithms
//!
//! * [`sequential::mine_sequential`] — the paper's SEQUENTIAL algorithm:
//!   run Apriori and rule generation independently in every time unit,
//!   then detect cycles a posteriori in each rule's binary sequence.
//!
//! * [`interleaved::mine_interleaved`] — the paper's INTERLEAVED
//!   algorithm, which pushes cycle detection *into* support counting via
//!   three techniques (each can be ablated through
//!   [`InterleavedOptions`]):
//!   - **cycle pruning** — an itemset's candidate cycles are at most the
//!     intersection of its subsets' cycles, so candidates start small;
//!   - **cycle skipping** — support of an itemset is only counted in
//!     units lying on one of its remaining candidate cycles;
//!   - **cycle elimination** — a unit where the itemset is not large
//!     immediately kills every candidate cycle through that unit.
//!
//! Both algorithms produce exactly the same rules with exactly the same
//! minimal cycles (property-tested); they differ only in the work
//! performed, which [`MiningStats`] exposes.
//!
//! ## Extensions
//!
//! * [`approx`] — approximate cycles with a bounded number of misses
//!   (sketched as future work in the paper).
//! * [`parallel`] *(feature `parallel`, default on)* — the SEQUENTIAL
//!   algorithm fanned out over worker threads, one chunk of time units
//!   each.
//!
//! ## Quick start
//!
//! ```
//! use car_core::{Algorithm, CyclicRuleMiner, MiningConfig};
//! use car_itemset::{ItemSet, SegmentedDb};
//!
//! // Coffee and sugar sell together every other day.
//! let unit_even = vec![ItemSet::from_ids([1, 2]); 10];
//! let unit_odd = vec![ItemSet::from_ids([3]); 10];
//! let db = SegmentedDb::from_unit_itemsets(vec![
//!     unit_even.clone(), unit_odd.clone(),
//!     unit_even.clone(), unit_odd.clone(),
//!     unit_even, unit_odd,
//! ]);
//!
//! let config = MiningConfig::builder()
//!     .min_support_fraction(0.5)
//!     .min_confidence(0.6)
//!     .cycle_bounds(2, 3)
//!     .build()
//!     .unwrap();
//! let outcome = CyclicRuleMiner::new(config, Algorithm::interleaved())
//!     .mine(&db)
//!     .unwrap();
//! assert!(outcome
//!     .rules
//!     .iter()
//!     .any(|r| r.rule.to_string() == "{1} => {2}"
//!         && r.cycles.iter().any(|c| (c.length(), c.offset()) == (2, 0))));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod approx;
mod config;
pub mod constraints;
pub mod incremental;
pub mod interleaved;
mod miner;
#[cfg(feature = "parallel")]
pub mod parallel;
pub mod report;
mod result;
pub mod sequential;
pub mod window;

pub use analyze::{analyze_rule, RuleTimeline};
pub use config::{ConfigBuilder, ConfigError, MiningConfig};
pub use constraints::RuleConstraints;
pub use interleaved::InterleavedOptions;
pub use miner::{Algorithm, CyclicRuleMiner};
pub use report::{MiningReport, RankedRule};
pub use result::{CyclicRule, MiningOutcome, MiningStats, RuleView};

// Re-export the vocabulary types callers need.
pub use car_apriori::{CountStrategy, MinConfidence, MinSupport, Rule};
pub use car_cycles::{Cycle, CycleBounds};
