//! The SEQUENTIAL algorithm of the ICDE'98 paper.
//!
//! SEQUENTIAL treats cyclic rule mining as two independent problems run
//! back to back:
//!
//! 1. **Per-unit rule mining.** For every time unit, run Apriori on that
//!    unit's transactions and generate the association rules that hold
//!    there (support and confidence computed within the unit).
//! 2. **Cycle detection.** Each distinct rule induces a binary sequence
//!    over the units (1 where it held); detect that sequence's cycles by
//!    candidate elimination and report the minimal ones.
//!
//! This is the natural baseline: correct, simple, and — as the paper
//! shows — wasteful, because it mines every unit at full strength even
//! for itemsets that can no longer be cyclic. INTERLEAVED exploits
//! exactly that slack.

use std::time::Instant;

use car_apriori::hash::FastHashMap;
use car_apriori::{generate_rules, Apriori, AprioriConfig, Rule};
use car_cycles::{detect_cycles, minimal_cycles, BitSeq};
use car_itemset::SegmentedDb;

use crate::config::{ConfigError, MiningConfig};
use crate::result::{CyclicRule, MiningOutcome, MiningStats};

/// Mines cyclic association rules with the SEQUENTIAL algorithm.
///
/// # Errors
///
/// Returns a [`ConfigError`] when the configuration is invalid for the
/// database (see [`MiningConfig::validate_for`]).
pub fn mine_sequential(
    db: &SegmentedDb,
    config: &MiningConfig,
) -> Result<MiningOutcome, ConfigError> {
    config.validate_for(db.num_units())?;
    let n = db.num_units();
    let mut stats = MiningStats {
        num_units: n,
        num_transactions: db.num_transactions(),
        ..Default::default()
    };

    // Phase 1: mine every unit independently and record, per rule, the
    // units in which it held.
    let phase1_start = Instant::now();
    let phase1_span = car_obs::time_span!("mine.seq.unit_mining");
    let mut sequences: FastHashMap<Rule, BitSeq> = FastHashMap::default();
    let mut apriori_config =
        AprioriConfig::new(config.min_support).with_counting(config.counting);
    if let Some(cap) = config.max_itemset_size {
        apriori_config = apriori_config.with_max_size(cap);
    }
    let apriori = Apriori::new(apriori_config);

    for (unit, transactions) in db.iter_units() {
        let (frequent, apriori_stats) = apriori.mine_with_stats(transactions);
        stats.support_computations += apriori_stats.candidates_counted;
        stats.candidates_generated += apriori_stats.candidates_counted;
        stats.bitmap_builds += apriori_stats.bitmap_builds;
        let rules = generate_rules(&frequent, config.min_confidence);
        stats.rules_checked += rules.len() as u64;
        for r in rules {
            sequences.entry(r.rule).or_insert_with(|| BitSeq::zeros(n)).set(unit, true);
        }
    }
    drop(phase1_span);
    stats.phase1 = phase1_start.elapsed();

    // Phase 2: detect cycles per rule sequence.
    let phase2_start = Instant::now();
    let phase2_span = car_obs::time_span!("mine.seq.cycle_detect");
    let mut rules: Vec<CyclicRule> = Vec::new();
    for (rule, seq) in sequences {
        let set = detect_cycles(&seq, config.cycle_bounds);
        if set.is_empty() {
            continue;
        }
        let cycles = minimal_cycles(&set);
        rules.push(CyclicRule { rule, cycles });
    }
    rules.sort();
    drop(phase2_span);
    stats.phase2 = phase2_start.elapsed();

    // SEQUENTIAL performs none of the INTERLEAVED optimizations, so the
    // pruned / skipped / eliminated globals receive exact zeros here —
    // the paper's baseline-vs-optimized comparison, visible in /metrics.
    car_obs::counters::MINE.record_run(
        stats.candidates_generated,
        stats.candidates_pruned_by_cycles,
        stats.skipped_counts,
        stats.cycles_eliminated,
        stats.support_computations,
    );
    car_obs::debug!(
        "mine",
        [
            algo = "sequential",
            units = stats.num_units,
            rules = rules.len(),
            supports = stats.support_computations
        ],
        "mining run complete"
    );

    Ok(MiningOutcome { rules, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use car_cycles::Cycle;
    use car_itemset::ItemSet;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    /// Units alternate between {1,2}-heavy and {3}-heavy content.
    fn alternating_db(units: usize) -> SegmentedDb {
        let even = vec![set(&[1, 2]); 8];
        let odd = vec![set(&[3]); 8];
        SegmentedDb::from_unit_itemsets(
            (0..units)
                .map(|u| if u % 2 == 0 { even.clone() } else { odd.clone() })
                .collect(),
        )
    }

    fn config(l_min: u32, l_max: u32) -> MiningConfig {
        MiningConfig::builder()
            .min_support_fraction(0.5)
            .min_confidence(0.5)
            .cycle_bounds(l_min, l_max)
            .build()
            .unwrap()
    }

    #[test]
    fn finds_alternating_rules() {
        let db = alternating_db(8);
        let outcome = mine_sequential(&db, &config(2, 4)).unwrap();
        // {1} => {2} and {2} => {1} hold in every even unit.
        let r12 = outcome
            .rules
            .iter()
            .find(|r| r.rule == Rule::new(set(&[1]), set(&[2])).unwrap())
            .expect("{1} => {2} should be cyclic");
        assert_eq!(r12.cycles, vec![Cycle::make(2, 0)]);
        let r21 = outcome
            .rules
            .iter()
            .find(|r| r.rule == Rule::new(set(&[2]), set(&[1])).unwrap())
            .expect("{2} => {1} should be cyclic");
        assert_eq!(r21.cycles, vec![Cycle::make(2, 0)]);
    }

    #[test]
    fn constant_rule_has_shortest_cycle_only() {
        // {1,2} in every unit → cycle (2,0) and (2,1) both hold; with
        // bounds [2,3] minimal cycles are (2,0), (2,1), (3,0), (3,1),
        // (3,2)… all are minimal (no divisors inside bounds except
        // themselves). Use l_min = 2 and check (2,*) survive minimality
        // alongside (3,*): none is a multiple of another.
        let db = SegmentedDb::from_unit_itemsets(vec![vec![set(&[1, 2]); 4]; 6]);
        let outcome = mine_sequential(&db, &config(2, 3)).unwrap();
        let r = outcome
            .rules
            .iter()
            .find(|r| r.rule == Rule::new(set(&[1]), set(&[2])).unwrap())
            .unwrap();
        let expect: Vec<Cycle> = vec![
            Cycle::make(2, 0),
            Cycle::make(2, 1),
            Cycle::make(3, 0),
            Cycle::make(3, 1),
            Cycle::make(3, 2),
        ];
        assert_eq!(r.cycles, expect);
    }

    #[test]
    fn no_rules_when_nothing_cyclic() {
        // Rule appears only once in 6 units: no cycle of length <= 3
        // survives (every candidate has an empty on-cycle unit).
        let mut units = vec![vec![set(&[9]); 4]; 6];
        units[0] = vec![set(&[1, 2]); 4];
        let db = SegmentedDb::from_unit_itemsets(units);
        let outcome = mine_sequential(&db, &config(2, 3)).unwrap();
        assert!(
            outcome.rules.iter().all(|r| r.rule.antecedent != set(&[1])),
            "one-shot rule must not be cyclic: {:?}",
            outcome.rules
        );
    }

    #[test]
    fn confidence_threshold_breaks_cycles() {
        // {1} everywhere; {1,2} only in even units, but unit 2 dilutes
        // confidence below threshold.
        let strong = vec![set(&[1, 2]), set(&[1, 2]), set(&[1, 2]), set(&[1])];
        let weak = vec![set(&[1, 2]), set(&[1]), set(&[1]), set(&[1])];
        let off = vec![set(&[1]); 4];
        let db = SegmentedDb::from_unit_itemsets(vec![
            strong.clone(),
            off.clone(),
            weak,
            off.clone(),
            strong,
            off,
        ]);
        let cfg = MiningConfig::builder()
            .min_support_fraction(0.25)
            .min_confidence(0.7)
            .cycle_bounds(2, 2)
            .build()
            .unwrap();
        let outcome = mine_sequential(&db, &cfg).unwrap();
        // {1} => {2}: support ok in units 0,2,4 but confidence at unit 2
        // is 1/4 < 0.7 → no (2,0) cycle.
        assert!(
            !outcome
                .rules
                .iter()
                .any(|r| r.rule == Rule::new(set(&[1]), set(&[2])).unwrap()),
            "{:?}",
            outcome.rules
        );
        // {2} => {1}: confidence 1 wherever {2} appears… but support of
        // {1,2} at unit 2 is 1/4 ≥ 0.25, so the rule holds at 0,2,4.
        let r = outcome
            .rules
            .iter()
            .find(|r| r.rule == Rule::new(set(&[2]), set(&[1])).unwrap())
            .expect("{2} => {1} cyclic");
        assert_eq!(r.cycles, vec![Cycle::make(2, 0)]);
    }

    #[test]
    fn rejects_bad_window() {
        let db = alternating_db(3);
        let err = mine_sequential(&db, &config(2, 4)).unwrap_err();
        assert_eq!(err, ConfigError::CycleBoundExceedsUnits { l_max: 4, num_units: 3 });
    }

    #[test]
    fn empty_units_hold_no_rules() {
        let db = SegmentedDb::from_unit_itemsets(vec![
            vec![set(&[1, 2]); 4],
            vec![],
            vec![set(&[1, 2]); 4],
            vec![],
        ]);
        let outcome = mine_sequential(&db, &config(2, 2)).unwrap();
        let r = outcome
            .rules
            .iter()
            .find(|r| r.rule == Rule::new(set(&[1]), set(&[2])).unwrap())
            .expect("cyclic in even units");
        assert_eq!(r.cycles, vec![Cycle::make(2, 0)]);
    }

    #[test]
    fn stats_are_populated() {
        let db = alternating_db(6);
        let outcome = mine_sequential(&db, &config(2, 3)).unwrap();
        assert_eq!(outcome.stats.num_units, 6);
        assert_eq!(outcome.stats.num_transactions, 48);
        assert!(outcome.stats.support_computations > 0);
        assert!(outcome.stats.rules_checked > 0);
        // Sequential never skips anything.
        assert_eq!(outcome.stats.skipped_counts, 0);
        assert_eq!(outcome.stats.skipped_unit_scans, 0);
    }
}
