//! The INTERLEAVED algorithm of the ICDE'98 paper.
//!
//! INTERLEAVED avoids SEQUENTIAL's wasted work by interleaving cycle
//! detection with support counting. It runs in two phases:
//!
//! **Phase 1 — cyclic large itemsets.** Level-wise like Apriori, but each
//! candidate itemset carries a set of *candidate cycles*
//! ([`car_cycles::CycleSet`]) that only ever shrinks:
//!
//! * **Cycle pruning** — because an itemset can only be large where all
//!   of its subsets are large, `cycles(Z) ⊆ cycles(X)` for every
//!   `X ⊂ Z`. A new `k`-candidate therefore starts from the intersection
//!   of its `(k−1)`-subsets' cycle sets instead of the full set, and is
//!   discarded outright when that intersection is empty.
//! * **Cycle skipping** — the support of a candidate is only counted in
//!   time units lying on one of its remaining candidate cycles; other
//!   units cannot influence any cycle it could still have.
//! * **Cycle elimination** — when a candidate is not large in a counted
//!   unit `i`, every candidate cycle `(l, i mod l)` dies immediately,
//!   enlarging the skip set for later units.
//!
//! **Phase 2 — cyclic rules.** For each cyclic large itemset `Z` and each
//! split `X ⇒ Z∖X`, the rule's candidate cycles start from `Z`'s final
//! cycle set (which is always a subset of `X`'s, so every needed support
//! is on hand) and confidence failures eliminate cycles the same way.
//!
//! Each optimization can be switched off through [`InterleavedOptions`];
//! any combination produces identical results and differs only in the
//! work counted by [`MiningStats`] — the property the
//! paper's ablation experiments measure.

use std::time::Instant;

use car_apriori::bitmap::{ItemCounter, ItemMap};
use car_apriori::hash::FastHashMap;
use car_apriori::{apriori_gen, count_candidates_detailed, Rule};
use car_cycles::{minimal_cycles, CycleSet};
use car_itemset::{Item, ItemSet, SegmentedDb};

use crate::config::{ConfigError, MiningConfig};
use crate::result::{CyclicRule, MiningOutcome, MiningStats};

/// Ablation switches for the three INTERLEAVED optimization techniques.
///
/// All switches default to on. Any combination yields the same mining
/// *results*; switching a technique off only increases the work done
/// (visible in [`MiningStats`]), which is how the
/// optimization-contribution experiments are run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InterleavedOptions {
    /// Start candidates from the intersection of their subsets' cycles.
    pub cycle_pruning: bool,
    /// Skip support counting in units off every remaining candidate
    /// cycle.
    pub cycle_skipping: bool,
    /// Remove candidate cycles as soon as a counted unit misses.
    pub cycle_elimination: bool,
}

impl Default for InterleavedOptions {
    fn default() -> Self {
        InterleavedOptions {
            cycle_pruning: true,
            cycle_skipping: true,
            cycle_elimination: true,
        }
    }
}

impl InterleavedOptions {
    /// All optimizations enabled (the paper's INTERLEAVED).
    pub fn all() -> Self {
        Self::default()
    }

    /// All optimizations disabled (a per-unit scan with a posteriori
    /// cycle detection over itemsets).
    pub fn none() -> Self {
        InterleavedOptions {
            cycle_pruning: false,
            cycle_skipping: false,
            cycle_elimination: false,
        }
    }

    /// Disables cycle pruning.
    pub fn without_pruning(mut self) -> Self {
        self.cycle_pruning = false;
        self
    }

    /// Disables cycle skipping.
    pub fn without_skipping(mut self) -> Self {
        self.cycle_skipping = false;
        self
    }

    /// Disables cycle elimination.
    pub fn without_elimination(mut self) -> Self {
        self.cycle_elimination = false;
        self
    }
}

/// Per-candidate mining state during phase 1.
struct CandidateState {
    itemset: ItemSet,
    /// Remaining candidate cycles (initial set if elimination is off).
    cycles: CycleSet,
    /// Units counted and found *not* large; only filled when cycle
    /// elimination is disabled, applied at the end of the level scan.
    misses: Vec<u32>,
    /// Support counts at units where the itemset was counted and large.
    supports: FastHashMap<u32, u64>,
}

impl CandidateState {
    fn new(itemset: ItemSet, cycles: CycleSet) -> Self {
        CandidateState {
            itemset,
            cycles,
            misses: Vec::new(),
            supports: FastHashMap::default(),
        }
    }

    /// Applies deferred misses (no-op when elimination ran eagerly).
    fn finalize(&mut self) -> u64 {
        let mut eliminated = 0;
        for &m in &self.misses {
            eliminated += self.cycles.eliminate(m as usize) as u64;
            if self.cycles.is_empty() {
                break;
            }
        }
        self.misses.clear();
        eliminated
    }
}

/// Mines cyclic association rules with the INTERLEAVED algorithm.
///
/// # Errors
///
/// Returns a [`ConfigError`] when the configuration is invalid for the
/// database (see [`MiningConfig::validate_for`]).
pub fn mine_interleaved(
    db: &SegmentedDb,
    config: &MiningConfig,
    options: InterleavedOptions,
) -> Result<MiningOutcome, ConfigError> {
    config.validate_for(db.num_units())?;
    let mut stats = MiningStats {
        num_units: db.num_units(),
        num_transactions: db.num_transactions(),
        ..Default::default()
    };

    let phase1_start = Instant::now();
    let phase1_span = car_obs::time_span!("mine.int.itemsets");
    let cyclic = find_cyclic_itemsets(db, config, options, &mut stats);
    stats.cyclic_itemsets = cyclic.len() as u64;
    drop(phase1_span);
    stats.phase1 = phase1_start.elapsed();

    let phase2_start = Instant::now();
    let phase2_span = car_obs::time_span!("mine.int.rule_gen");
    let rules =
        generate_cyclic_rules(db.num_units(), config, options, &cyclic, &mut stats);
    drop(phase2_span);
    stats.phase2 = phase2_start.elapsed();

    // Flush this run's totals into the process-global counters exactly
    // once; the hot loops above only touch the local `stats` struct.
    car_obs::counters::MINE.record_run(
        stats.candidates_generated,
        stats.candidates_pruned_by_cycles,
        stats.skipped_counts,
        stats.cycles_eliminated,
        stats.support_computations,
    );
    car_obs::debug!(
        "mine",
        [
            algo = "interleaved",
            units = stats.num_units,
            rules = rules.len(),
            supports = stats.support_computations,
            skipped = stats.skipped_counts,
            pruned = stats.candidates_pruned_by_cycles,
            eliminated = stats.cycles_eliminated
        ],
        "mining run complete"
    );

    Ok(MiningOutcome { rules, stats })
}

/// Phase 1: the cyclic large itemsets of `db`, each with its final
/// (un-filtered) cycle set and its per-unit support counts on large
/// units.
fn find_cyclic_itemsets(
    db: &SegmentedDb,
    config: &MiningConfig,
    options: InterleavedOptions,
    stats: &mut MiningStats,
) -> Vec<CandidateState> {
    let n = db.num_units();
    let bounds = config.cycle_bounds;
    let mut all_survivors: Vec<CandidateState> = Vec::new();

    // ---- Level 1 ----------------------------------------------------
    // Items are discovered as they first appear; a state created at unit
    // `i` inherits misses for every earlier unit (its count there was 0,
    // which is never large).
    //
    // The per-unit occurrence counter and the seen-item set are flat
    // refstores when the id space is dense (the common case); one cheap
    // pre-pass over the database sizes them. The counter clears in
    // O(items touched), so a single allocation serves every unit.
    let mut states: Vec<CandidateState> = Vec::new();
    let mut max_id: u32 = 0;
    let mut occurrences: usize = 0;
    for i in 0..n {
        for t in db.unit(i) {
            for item in t.iter() {
                max_id = max_id.max(item.id());
                occurrences = occurrences.saturating_add(1);
            }
        }
    }
    let mut seen: ItemMap<()> = ItemMap::for_universe(max_id, occurrences);
    let mut unit_counts = ItemCounter::for_universe(max_id, occurrences);

    let level1_span = car_obs::time_span!("mine.int.level1_scan");
    for i in 0..n {
        let transactions = db.unit(i);
        let threshold = config.min_support.threshold(transactions.len());

        // One pass over the unit counts every item it contains.
        unit_counts.clear();
        for t in transactions {
            for item in t.iter() {
                unit_counts.add(item.id(), 1);
            }
        }

        // Register newly seen items.
        for id in unit_counts.ids_sorted() {
            if !seen.contains(id) {
                seen.insert(id, ());
                let mut cycles = CycleSet::full(bounds);
                let mut misses = Vec::new();
                if options.cycle_elimination {
                    for j in 0..i {
                        stats.cycles_eliminated += cycles.eliminate(j) as u64;
                        if cycles.is_empty() {
                            break;
                        }
                    }
                } else {
                    misses.extend(0..i as u32);
                }
                let mut state =
                    CandidateState::new(ItemSet::single(Item::new(id)), cycles);
                state.misses = misses;
                states.push(state);
                stats.candidates_generated += 1;
            }
        }

        for state in &mut states {
            let active = !options.cycle_skipping || state.cycles.includes_unit(i);
            if !active {
                stats.skipped_counts += 1;
                continue;
            }
            stats.support_computations += 1;
            let Some(&item) = state.itemset.as_slice().first() else {
                continue; // level-1 states always hold a single item
            };
            let count = unit_counts.get(item.id());
            if count >= threshold {
                state.supports.insert(i as u32, count);
            } else if options.cycle_elimination {
                stats.cycles_eliminated += state.cycles.eliminate(i) as u64;
            } else {
                state.misses.push(i as u32);
            }
        }
    }
    drop(level1_span);

    let mut survivors: Vec<CandidateState> = states
        .into_iter()
        .filter_map(|mut s| {
            stats.cycles_eliminated += s.finalize();
            (!s.cycles.is_empty()).then_some(s)
        })
        .collect();
    survivors.sort_by(|a, b| a.itemset.cmp(&b.itemset));

    // ---- Levels k >= 2 ----------------------------------------------
    let mut k = 1;
    while !survivors.is_empty() {
        k += 1;
        let at_cap = config.max_itemset_size.is_some_and(|cap| k > cap);

        // Candidate generation for the next level happens before the
        // previous survivors move into the accumulator.
        let next_states: Vec<CandidateState> = if at_cap {
            Vec::new()
        } else {
            let _span = car_obs::time_span!("mine.int.candidate_gen");
            let large_sets: Vec<ItemSet> =
                survivors.iter().map(|s| s.itemset.clone()).collect();
            apriori_gen(&large_sets)
                .into_iter()
                .filter_map(|candidate| {
                    let cycles = if options.cycle_pruning {
                        let mut acc: Option<CycleSet> = None;
                        for sub in candidate.immediate_subsets() {
                            // apriori_gen guarantees every immediate
                            // subset is large; a miss means the candidate
                            // cannot be large either, so drop it.
                            // `survivors` is sorted by itemset, so the
                            // subset's cycles are a binary search away —
                            // no per-level hash map.
                            let sub_cycles = survivors
                                .binary_search_by(|s| s.itemset.cmp(&sub))
                                .ok()
                                .and_then(|idx| survivors.get(idx))
                                .map(|s| &s.cycles)?;
                            match &mut acc {
                                None => acc = Some(sub_cycles.clone()),
                                Some(a) => a.intersect_with(sub_cycles),
                            }
                            if acc.as_ref().is_some_and(CycleSet::is_empty) {
                                break;
                            }
                        }
                        // Candidates have at least two immediate subsets,
                        // so the intersection is always populated.
                        acc?
                    } else {
                        CycleSet::full(bounds)
                    };
                    if cycles.is_empty() {
                        stats.candidates_pruned_by_cycles += 1;
                        None
                    } else {
                        stats.candidates_generated += 1;
                        Some(CandidateState::new(candidate, cycles))
                    }
                })
                .collect()
        };

        all_survivors.append(&mut survivors);
        let mut states = next_states;
        if states.is_empty() {
            break;
        }

        // Scan all units for this level.
        let scan_span = car_obs::time_span!("mine.int.support_count");
        for i in 0..n {
            let active: Vec<usize> = states
                .iter()
                .enumerate()
                .filter(|(_, s)| !options.cycle_skipping || s.cycles.includes_unit(i))
                .map(|(idx, _)| idx)
                .collect();
            stats.skipped_counts += (states.len() - active.len()) as u64;
            if active.is_empty() {
                stats.skipped_unit_scans += 1;
                continue;
            }

            let transactions = db.unit(i);
            let threshold = config.min_support.threshold(transactions.len());
            let candidate_sets: Vec<ItemSet> = active
                .iter()
                .filter_map(|&idx| states.get(idx).map(|s| s.itemset.clone()))
                .collect();
            let outcome =
                count_candidates_detailed(&candidate_sets, transactions, config.counting);
            stats.support_computations += active.len() as u64;
            stats.bitmap_builds += outcome.bitmap_builds;

            for (&idx, &count) in active.iter().zip(&outcome.counts) {
                let Some(state) = states.get_mut(idx) else {
                    continue; // `active` indexes into `states` by construction
                };
                if count >= threshold {
                    state.supports.insert(i as u32, count);
                } else if options.cycle_elimination {
                    stats.cycles_eliminated += state.cycles.eliminate(i) as u64;
                } else {
                    state.misses.push(i as u32);
                }
            }
        }
        drop(scan_span);

        survivors = states
            .into_iter()
            .filter_map(|mut s| {
                stats.cycles_eliminated += s.finalize();
                (!s.cycles.is_empty()).then_some(s)
            })
            .collect();
        survivors.sort_by(|a, b| a.itemset.cmp(&b.itemset));
    }
    all_survivors.append(&mut survivors);
    all_survivors
}

/// Phase 2: derive cyclic rules from the cyclic large itemsets.
fn generate_cyclic_rules(
    num_units: usize,
    config: &MiningConfig,
    options: InterleavedOptions,
    cyclic: &[CandidateState],
    stats: &mut MiningStats,
) -> Vec<CyclicRule> {
    let lookup: FastHashMap<&ItemSet, usize> =
        cyclic.iter().enumerate().map(|(i, s)| (&s.itemset, i)).collect();

    let mut rules: Vec<CyclicRule> = Vec::new();
    for z in cyclic {
        if z.itemset.len() < 2 {
            continue;
        }
        // Units that can influence any cycle of a rule derived from Z.
        let covered = z.cycles.covered_units(num_units);
        for antecedent in z.itemset.proper_nonempty_subsets() {
            stats.rules_checked += 1;
            // Subsets of a cyclic itemset are always cyclic, so the
            // antecedent is present; skip the rule rather than panic if
            // the invariant is ever violated.
            let Some(x_state) = lookup.get(&antecedent).and_then(|&idx| cyclic.get(idx))
            else {
                continue;
            };

            // The rule's cycles start from Z's: a rule can only hold
            // where Z is large, and C_Z ⊆ C_X guarantees X's counts are
            // available at every unit we inspect.
            let mut rule_cycles = z.cycles.clone();
            for u in covered.iter_ones() {
                if options.cycle_skipping && !rule_cycles.includes_unit(u) {
                    continue;
                }
                // Z is large on every unit of its cycles and X is large
                // wherever Z is, so both counts are recorded; if either
                // is somehow missing, the rule is unverifiable at this
                // unit and its cycles through it must die.
                let (Some(&z_count), Some(&x_count)) =
                    (z.supports.get(&(u as u32)), x_state.supports.get(&(u as u32)))
                else {
                    rule_cycles.eliminate(u);
                    if rule_cycles.is_empty() {
                        break;
                    }
                    continue;
                };
                if !config.min_confidence.accepts(z_count, x_count) {
                    rule_cycles.eliminate(u);
                    if rule_cycles.is_empty() {
                        break;
                    }
                }
            }
            if rule_cycles.is_empty() {
                continue;
            }
            let consequent = z.itemset.difference(&antecedent);
            rules.push(CyclicRule {
                rule: Rule { antecedent, consequent },
                cycles: minimal_cycles(&rule_cycles),
            });
        }
    }
    rules.sort();
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::mine_sequential;
    use car_cycles::Cycle;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    fn alternating_db(units: usize) -> SegmentedDb {
        let even = vec![set(&[1, 2]); 8];
        let odd = vec![set(&[3]); 8];
        SegmentedDb::from_unit_itemsets(
            (0..units)
                .map(|u| if u % 2 == 0 { even.clone() } else { odd.clone() })
                .collect(),
        )
    }

    fn config(l_min: u32, l_max: u32) -> MiningConfig {
        MiningConfig::builder()
            .min_support_fraction(0.5)
            .min_confidence(0.5)
            .cycle_bounds(l_min, l_max)
            .build()
            .unwrap()
    }

    #[test]
    fn finds_alternating_rules() {
        let db = alternating_db(8);
        let outcome =
            mine_interleaved(&db, &config(2, 4), InterleavedOptions::all()).unwrap();
        let r = outcome
            .rules
            .iter()
            .find(|r| r.rule == Rule::new(set(&[1]), set(&[2])).unwrap())
            .expect("{1} => {2} cyclic");
        assert_eq!(r.cycles, vec![Cycle::make(2, 0)]);
    }

    #[test]
    fn matches_sequential_on_fixed_dbs() {
        for units in [4usize, 6, 8, 12] {
            let db = alternating_db(units);
            for (lo, hi) in [(2u32, 4u32), (1, 3), (2, 2)] {
                let hi = hi.min(units as u32);
                let cfg = config(lo, hi);
                let seq = mine_sequential(&db, &cfg).unwrap();
                for opts in [
                    InterleavedOptions::all(),
                    InterleavedOptions::none(),
                    InterleavedOptions::all().without_pruning(),
                    InterleavedOptions::all().without_skipping(),
                    InterleavedOptions::all().without_elimination(),
                ] {
                    let int = mine_interleaved(&db, &cfg, opts).unwrap();
                    assert_eq!(
                        seq.rules, int.rules,
                        "units={units} bounds=[{lo},{hi}] opts={opts:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn skipping_reduces_support_computations() {
        let db = alternating_db(12);
        let cfg = config(2, 4);
        let with = mine_interleaved(&db, &cfg, InterleavedOptions::all()).unwrap();
        let without =
            mine_interleaved(&db, &cfg, InterleavedOptions::all().without_skipping())
                .unwrap();
        assert_eq!(with.rules, without.rules);
        assert!(
            with.stats.support_computations < without.stats.support_computations,
            "skipping must save work: {} vs {}",
            with.stats.support_computations,
            without.stats.support_computations
        );
        assert!(with.stats.skipped_counts > 0);
    }

    #[test]
    fn elimination_enables_more_skipping() {
        let db = alternating_db(12);
        let cfg = config(2, 4);
        let full = mine_interleaved(&db, &cfg, InterleavedOptions::all()).unwrap();
        let no_elim =
            mine_interleaved(&db, &cfg, InterleavedOptions::all().without_elimination())
                .unwrap();
        assert_eq!(full.rules, no_elim.rules);
        assert!(full.stats.support_computations <= no_elim.stats.support_computations);
    }

    #[test]
    fn empty_units_are_handled() {
        let db = SegmentedDb::from_unit_itemsets(vec![
            vec![set(&[1, 2]); 4],
            vec![],
            vec![set(&[1, 2]); 4],
            vec![],
        ]);
        let cfg = config(2, 2);
        let outcome = mine_interleaved(&db, &cfg, InterleavedOptions::all()).unwrap();
        let r = outcome
            .rules
            .iter()
            .find(|r| r.rule == Rule::new(set(&[1]), set(&[2])).unwrap())
            .expect("cyclic in even units");
        assert_eq!(r.cycles, vec![Cycle::make(2, 0)]);
        assert_eq!(outcome.rules, mine_sequential(&db, &cfg).unwrap().rules);
    }

    #[test]
    fn rejects_bad_window() {
        let db = alternating_db(3);
        let err =
            mine_interleaved(&db, &config(2, 4), InterleavedOptions::all()).unwrap_err();
        assert_eq!(err, ConfigError::CycleBoundExceedsUnits { l_max: 4, num_units: 3 });
    }

    #[test]
    fn stats_count_cyclic_itemsets() {
        let db = alternating_db(8);
        let outcome =
            mine_interleaved(&db, &config(2, 4), InterleavedOptions::all()).unwrap();
        // {1}, {2}, {3}, {1,2} are all cyclic.
        assert_eq!(outcome.stats.cyclic_itemsets, 4);
        assert!(outcome.stats.support_computations > 0);
        assert!(outcome.stats.rules_checked >= 2);
    }

    #[test]
    fn max_itemset_size_caps_output() {
        let db = SegmentedDb::from_unit_itemsets(vec![vec![set(&[1, 2, 3]); 4]; 4]);
        let mut cfg = config(2, 2);
        cfg.max_itemset_size = Some(2);
        let outcome = mine_interleaved(&db, &cfg, InterleavedOptions::all()).unwrap();
        assert!(outcome
            .rules
            .iter()
            .all(|r| r.rule.antecedent.len() + r.rule.consequent.len() <= 2));
        assert_eq!(outcome.rules, mine_sequential(&db, &cfg).unwrap().rules);
    }
}
