//! Incremental cyclic rule mining over a growing window.
//!
//! The batch miners assume the whole time window is available up front.
//! Production deployments see time units *arrive*: yesterday closes, a
//! new unit of transactions lands, and the analyst wants the updated
//! cyclic rules without re-mining history. [`IncrementalMiner`] supports
//! exactly that:
//!
//! * each arriving unit is mined once (per-unit Apriori + rule
//!   generation, as in SEQUENTIAL phase 1) and never touched again;
//! * per-rule hold-sequences grow append-only;
//! * cycle detection re-runs only at query time, over the sequences —
//!   the cheap part (`O(rules · zeros)` with early exit).
//!
//! The result after `push_unit`-ing units `0..n` is **identical** to
//! batch-mining the same database (equivalence-tested), with the
//! per-unit mining cost paid exactly once per unit.

use car_apriori::hash::FastHashMap;
use car_apriori::{generate_rules, Apriori, AprioriConfig, Rule};
use car_cycles::{detect_cycles, minimal_cycles, BitSeq};
use car_itemset::{ItemSet, SegmentedDb};

use crate::config::{ConfigError, MiningConfig};
use crate::result::CyclicRule;

/// An online cyclic-rule miner fed one time unit at a time.
///
/// ```
/// use car_core::incremental::IncrementalMiner;
/// use car_core::MiningConfig;
/// use car_itemset::ItemSet;
///
/// let config = MiningConfig::builder()
///     .min_support_fraction(0.5)
///     .min_confidence(0.5)
///     .cycle_bounds(2, 2)
///     .build()
///     .unwrap();
/// let mut miner = IncrementalMiner::new(config);
/// for day in 0..6 {
///     let unit = if day % 2 == 0 {
///         vec![ItemSet::from_ids([1, 2]); 4]
///     } else {
///         vec![ItemSet::from_ids([9]); 4]
///     };
///     miner.push_unit(&unit);
/// }
/// let rules = miner.current_rules().unwrap();
/// assert!(rules.iter().any(|r| r.rule.to_string() == "{1} => {2}"));
/// ```
pub struct IncrementalMiner {
    config: MiningConfig,
    apriori: Apriori,
    /// Units seen so far.
    units: usize,
    /// Hold-units per rule, append-only (unit indices, increasing).
    sequences: FastHashMap<Rule, Vec<u32>>,
}

impl IncrementalMiner {
    /// Creates a miner that has seen no units yet.
    pub fn new(config: MiningConfig) -> Self {
        let mut apriori_config =
            AprioriConfig::new(config.min_support).with_counting(config.counting);
        if let Some(cap) = config.max_itemset_size {
            apriori_config = apriori_config.with_max_size(cap);
        }
        IncrementalMiner {
            config,
            apriori: Apriori::new(apriori_config),
            units: 0,
            sequences: FastHashMap::default(),
        }
    }

    /// Number of units ingested so far.
    pub fn num_units(&self) -> usize {
        self.units
    }

    /// The mining configuration.
    pub fn config(&self) -> &MiningConfig {
        &self.config
    }

    /// Ingests the transactions of the next time unit; returns the unit's
    /// index. The unit is mined once, immediately.
    pub fn push_unit(&mut self, transactions: &[ItemSet]) -> usize {
        let unit = self.units as u32;
        let frequent = self.apriori.mine(transactions);
        for r in generate_rules(&frequent, self.config.min_confidence) {
            self.sequences.entry(r.rule).or_default().push(unit);
        }
        self.units += 1;
        self.units - 1
    }

    /// The cyclic rules over every unit ingested so far — identical to
    /// batch-mining the same database.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] while fewer units than
    /// `cycle_bounds.l_max()` have been ingested (cycles would be
    /// unobservable; see [`MiningConfig::validate_for`]).
    pub fn current_rules(&self) -> Result<Vec<CyclicRule>, ConfigError> {
        self.config.validate_for(self.units)?;
        let mut rules: Vec<CyclicRule> = Vec::new();
        for (rule, holds) in &self.sequences {
            let mut seq = BitSeq::zeros(self.units);
            for &u in holds {
                seq.set(u as usize, true);
            }
            let set = detect_cycles(&seq, self.config.cycle_bounds);
            if set.is_empty() {
                continue;
            }
            rules.push(CyclicRule { rule: rule.clone(), cycles: minimal_cycles(&set) });
        }
        rules.sort();
        Ok(rules)
    }

    /// Convenience: ingest every unit of a segmented database in order.
    pub fn push_db(&mut self, db: &SegmentedDb) {
        for (_, transactions) in db.iter_units() {
            self.push_unit(transactions);
        }
    }

    /// The hold-sequence of one rule over the ingested window, if the
    /// rule has ever held.
    pub fn rule_sequence(&self, rule: &Rule) -> Option<BitSeq> {
        let holds = self.sequences.get(rule)?;
        let mut seq = BitSeq::zeros(self.units);
        for &u in holds {
            seq.set(u as usize, true);
        }
        Some(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::mine_sequential;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    fn config(l_min: u32, l_max: u32) -> MiningConfig {
        MiningConfig::builder()
            .min_support_fraction(0.5)
            .min_confidence(0.5)
            .cycle_bounds(l_min, l_max)
            .build()
            .unwrap()
    }

    fn alternating_db(units: usize) -> SegmentedDb {
        SegmentedDb::from_unit_itemsets(
            (0..units)
                .map(
                    |u| {
                        if u % 2 == 0 {
                            vec![set(&[1, 2]); 4]
                        } else {
                            vec![set(&[3]); 4]
                        }
                    },
                )
                .collect(),
        )
    }

    #[test]
    fn matches_batch_after_each_unit() {
        let db = alternating_db(10);
        let cfg = config(2, 3);
        let mut miner = IncrementalMiner::new(cfg);
        for n in 1..=10usize {
            miner.push_unit(db.unit(n - 1));
            assert_eq!(miner.num_units(), n);
            if n >= 3 {
                // Batch-mine the prefix and compare.
                let prefix = SegmentedDb::from_unit_itemsets(
                    (0..n).map(|u| db.unit(u).to_vec()).collect(),
                );
                let batch = mine_sequential(&prefix, &cfg).unwrap();
                let incremental = miner.current_rules().unwrap();
                assert_eq!(incremental, batch.rules, "prefix of {n} units");
            }
        }
    }

    #[test]
    fn too_few_units_is_an_error() {
        let cfg = config(2, 4);
        let mut miner = IncrementalMiner::new(cfg);
        assert!(miner.current_rules().is_err());
        miner.push_unit(&[set(&[1])]);
        assert!(miner.current_rules().is_err()); // 1 < l_max = 4
        for _ in 0..3 {
            miner.push_unit(&[set(&[1])]);
        }
        assert!(miner.current_rules().is_ok());
    }

    #[test]
    fn new_unit_can_break_cycles() {
        let cfg = config(2, 2);
        let mut miner = IncrementalMiner::new(cfg);
        for u in 0..4 {
            if u % 2 == 0 {
                miner.push_unit(&vec![set(&[1, 2]); 4]);
            } else {
                miner.push_unit(&vec![set(&[9]); 4]);
            }
        }
        let rules = miner.current_rules().unwrap();
        assert!(rules.iter().any(|r| r.rule.to_string() == "{1} => {2}"));

        // Unit 4 should continue the cycle but delivers nothing.
        miner.push_unit(&vec![set(&[9]); 4]);
        let rules = miner.current_rules().unwrap();
        assert!(
            !rules.iter().any(|r| r.rule.to_string() == "{1} => {2}"),
            "broken cycle must disappear: {rules:?}"
        );
    }

    #[test]
    fn push_db_matches_unit_by_unit() {
        let db = alternating_db(8);
        let cfg = config(2, 3);
        let mut a = IncrementalMiner::new(cfg);
        a.push_db(&db);
        let mut b = IncrementalMiner::new(cfg);
        for (_, unit) in db.iter_units() {
            b.push_unit(unit);
        }
        assert_eq!(a.current_rules().unwrap(), b.current_rules().unwrap());
    }

    #[test]
    fn rule_sequence_reflects_holds() {
        let db = alternating_db(6);
        let cfg = config(2, 3);
        let mut miner = IncrementalMiner::new(cfg);
        miner.push_db(&db);
        let rule = Rule::new(set(&[1]), set(&[2])).unwrap();
        let seq = miner.rule_sequence(&rule).expect("rule held");
        assert_eq!(seq.to_string(), "101010");
        let absent = Rule::new(set(&[7]), set(&[8])).unwrap();
        assert!(miner.rule_sequence(&absent).is_none());
    }
}
