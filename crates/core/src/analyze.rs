//! Post-mining analysis: inspect *why* a rule is (or is not) cyclic.
//!
//! The miners report rules and minimal cycles; analysts usually want the
//! underlying per-unit picture — supports, confidences, and the exact
//! hold-sequence — to judge how strong a seasonal pattern really is and
//! where it broke. [`analyze_rule`] computes that timeline directly from
//! the database for any rule, mined or hypothesised.

use car_apriori::Rule;
use car_cycles::{detect_cycles, minimal_cycles, BitSeq, Cycle};
use car_itemset::SegmentedDb;

use crate::config::{ConfigError, MiningConfig};

/// The per-unit behaviour of one rule over a segmented database.
#[derive(Clone, Debug, PartialEq)]
pub struct RuleTimeline {
    /// The rule analysed.
    pub rule: Rule,
    /// Hold/miss per unit (the binary sequence the paper works with).
    pub holds: BitSeq,
    /// Per-unit support fraction of `antecedent ∪ consequent`
    /// (0 for empty units).
    pub supports: Vec<f64>,
    /// Per-unit confidence (0 when the antecedent is absent).
    pub confidences: Vec<f64>,
    /// Minimal cycles of the hold-sequence within the config's bounds.
    pub cycles: Vec<Cycle>,
}

impl RuleTimeline {
    /// Units in which the rule held.
    pub fn units_held(&self) -> usize {
        self.holds.count_ones()
    }

    /// Mean support over the units where the rule held (0 if none).
    pub fn mean_support_when_held(&self) -> f64 {
        mean_over(&self.supports, &self.holds)
    }

    /// Mean confidence over the units where the rule held (0 if none).
    pub fn mean_confidence_when_held(&self) -> f64 {
        mean_over(&self.confidences, &self.holds)
    }

    /// Whether the rule is cyclic under the analysed bounds.
    pub fn is_cyclic(&self) -> bool {
        !self.cycles.is_empty()
    }

    /// The units of `cycle` where the rule did *not* hold — empty for a
    /// true cycle of this rule; useful when diagnosing near-cycles.
    pub fn misses_on(&self, cycle: Cycle) -> Vec<usize> {
        cycle.units(self.holds.len()).filter(|&u| !self.holds.get(u)).collect()
    }
}

fn mean_over(values: &[f64], mask: &BitSeq) -> f64 {
    let held: Vec<f64> = mask.iter_ones().map(|u| values[u]).collect();
    if held.is_empty() {
        0.0
    } else {
        held.iter().sum::<f64>() / held.len() as f64
    }
}

/// Computes the full timeline of `rule` over `db` under `config`.
///
/// # Errors
///
/// Returns a [`ConfigError`] if the configuration is invalid for the
/// database, or [`ConfigError::EmptyDatabase`] for a rule with an empty
/// side (rejected at [`Rule::new`] anyway).
pub fn analyze_rule(
    db: &SegmentedDb,
    config: &MiningConfig,
    rule: &Rule,
) -> Result<RuleTimeline, ConfigError> {
    config.validate_for(db.num_units())?;
    let n = db.num_units();
    let itemset = rule.itemset();

    let mut holds = BitSeq::zeros(n);
    let mut supports = Vec::with_capacity(n);
    let mut confidences = Vec::with_capacity(n);

    for (u, transactions) in db.iter_units() {
        let total = transactions.len();
        let z_count =
            transactions.iter().filter(|t| itemset.is_subset_of(t)).count() as u64;
        let x_count =
            transactions.iter().filter(|t| rule.antecedent.is_subset_of(t)).count()
                as u64;
        supports.push(if total == 0 { 0.0 } else { z_count as f64 / total as f64 });
        confidences.push(if x_count == 0 {
            0.0
        } else {
            z_count as f64 / x_count as f64
        });
        let threshold = config.min_support.threshold(total);
        if z_count >= threshold && config.min_confidence.accepts(z_count, x_count) {
            holds.set(u, true);
        }
    }

    let cycles = minimal_cycles(&detect_cycles(&holds, config.cycle_bounds));
    Ok(RuleTimeline { rule: rule.clone(), holds, supports, confidences, cycles })
}

#[cfg(test)]
mod tests {
    use super::*;
    use car_itemset::ItemSet;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    fn db() -> SegmentedDb {
        // Units 0,2: {1,2} ×3 + {1} ×1; units 1,3: {9} ×4.
        let on = vec![set(&[1, 2]), set(&[1, 2]), set(&[1, 2]), set(&[1])];
        let off = vec![set(&[9]); 4];
        SegmentedDb::from_unit_itemsets(vec![on.clone(), off.clone(), on, off])
    }

    fn config() -> MiningConfig {
        MiningConfig::builder()
            .min_support_fraction(0.5)
            .min_confidence(0.6)
            .cycle_bounds(2, 2)
            .build()
            .unwrap()
    }

    #[test]
    fn timeline_matches_hand_computation() {
        let rule = Rule::new(set(&[1]), set(&[2])).unwrap();
        let t = analyze_rule(&db(), &config(), &rule).unwrap();
        assert_eq!(t.holds.to_string(), "1010");
        assert_eq!(t.supports, vec![0.75, 0.0, 0.75, 0.0]);
        assert_eq!(t.confidences, vec![0.75, 0.0, 0.75, 0.0]);
        assert_eq!(t.units_held(), 2);
        assert!((t.mean_support_when_held() - 0.75).abs() < 1e-12);
        assert!((t.mean_confidence_when_held() - 0.75).abs() < 1e-12);
        assert!(t.is_cyclic());
        assert_eq!(t.cycles, vec![Cycle::make(2, 0)]);
        assert!(t.misses_on(Cycle::make(2, 0)).is_empty());
        assert_eq!(t.misses_on(Cycle::make(2, 1)), vec![1, 3]);
    }

    #[test]
    fn timeline_agrees_with_miner() {
        use crate::miner::{Algorithm, CyclicRuleMiner};
        let db = db();
        let cfg = config();
        let outcome =
            CyclicRuleMiner::new(cfg, Algorithm::interleaved()).mine(&db).unwrap();
        for mined in &outcome.rules {
            let t = analyze_rule(&db, &cfg, &mined.rule).unwrap();
            assert_eq!(t.cycles, mined.cycles, "{}", mined.rule);
        }
    }

    #[test]
    fn non_cyclic_rule_reports_empty_cycles() {
        let rule = Rule::new(set(&[9]), set(&[1])).unwrap();
        let t = analyze_rule(&db(), &config(), &rule).unwrap();
        assert_eq!(t.holds.to_string(), "0000");
        assert!(!t.is_cyclic());
        assert_eq!(t.units_held(), 0);
        assert_eq!(t.mean_support_when_held(), 0.0);
    }

    #[test]
    fn rejects_invalid_window() {
        let rule = Rule::new(set(&[1]), set(&[2])).unwrap();
        let narrow = SegmentedDb::from_unit_itemsets(vec![vec![set(&[1, 2])]]);
        assert!(analyze_rule(&narrow, &config(), &rule).is_err());
    }
}
