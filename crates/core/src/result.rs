use std::fmt;
use std::time::Duration;

use car_apriori::Rule;
use car_cycles::Cycle;

/// A cyclic association rule: a rule together with its *minimal* cycles.
///
/// The cycles are sorted by `(length, offset)` and contain no cycle that
/// is a multiple of another — the reporting form of the ICDE'98 paper.
/// Both mining algorithms produce identical `CyclicRule` values for the
/// same input, which the equivalence tests rely on.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CyclicRule {
    /// The association rule.
    pub rule: Rule,
    /// Its minimal cycles, sorted.
    pub cycles: Vec<Cycle>,
}

impl fmt::Debug for CyclicRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for CyclicRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ ", self.rule)?;
        for (i, c) in self.cycles.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// A shared, immutable snapshot of the rules over some window — what
/// [`SlidingWindowMiner::query_rules`](crate::window::SlidingWindowMiner::query_rules)
/// returns. Cloning a `RuleView` bumps a reference count; the rule data
/// itself is assembled once per window epoch and never deep-copied per
/// query.
pub type RuleView = std::sync::Arc<Vec<CyclicRule>>;

/// Work and timing counters for one mining run.
///
/// The counter semantics follow the cost model of the ICDE'98 paper:
/// `support_computations` counts `(itemset, time unit)` pairs whose
/// support was actually computed — the work cycle skipping exists to
/// avoid — while `skipped_counts` counts the pairs that the INTERLEAVED
/// optimizations let the miner *not* compute.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MiningStats {
    /// Time units in the database.
    pub num_units: usize,
    /// Transactions in the database.
    pub num_transactions: usize,
    /// `(itemset, unit)` support computations performed.
    pub support_computations: u64,
    /// `(itemset, unit)` support computations avoided by cycle skipping.
    pub skipped_counts: u64,
    /// Time units skipped entirely at some level (no active candidate).
    pub skipped_unit_scans: u64,
    /// Vertical tid-bitmap constructions performed by the counting
    /// kernel. A unit scan skipped by cycle skipping never reaches the
    /// kernel, so its bitmap is never built — under a forced `Vertical`
    /// strategy this equals the non-skipped unit scans exactly.
    pub bitmap_builds: u64,
    /// Candidate itemsets generated across all levels (after pruning).
    pub candidates_generated: u64,
    /// Candidates discarded because cycle pruning left them no cycles.
    pub candidates_pruned_by_cycles: u64,
    /// Candidate cycles removed by cycle elimination.
    pub cycles_eliminated: u64,
    /// Cyclic large itemsets found (interleaved phase 1 survivors).
    pub cyclic_itemsets: u64,
    /// Candidate rules whose confidence was checked.
    pub rules_checked: u64,
    /// Wall-clock time of phase 1 (itemsets / per-unit rule mining).
    pub phase1: Duration,
    /// Wall-clock time of phase 2 (rule cycles / cycle detection).
    pub phase2: Duration,
}

impl MiningStats {
    /// Total wall-clock time of both phases.
    pub fn total_time(&self) -> Duration {
        self.phase1 + self.phase2
    }
}

/// The result of a mining run: the cyclic rules plus work counters.
#[derive(Clone, Debug)]
pub struct MiningOutcome {
    /// The cyclic association rules, sorted by rule then cycles.
    pub rules: Vec<CyclicRule>,
    /// Work and timing counters.
    pub stats: MiningStats,
}

impl MiningOutcome {
    /// Convenience: the number of rules found.
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use car_itemset::ItemSet;

    #[test]
    fn display_forms() {
        let r = CyclicRule {
            rule: Rule::new(ItemSet::from_ids([1]), ItemSet::from_ids([2])).unwrap(),
            cycles: vec![Cycle::make(2, 0), Cycle::make(3, 1)],
        };
        assert_eq!(r.to_string(), "{1} => {2} @ (2,0),(3,1)");
        assert_eq!(format!("{r:?}"), "{1} => {2} @ (2,0),(3,1)");
    }

    #[test]
    fn stats_total_time() {
        let stats = MiningStats {
            phase1: Duration::from_millis(30),
            phase2: Duration::from_millis(12),
            ..Default::default()
        };
        assert_eq!(stats.total_time(), Duration::from_millis(42));
    }

    #[test]
    fn outcome_counts_rules() {
        let outcome = MiningOutcome { rules: Vec::new(), stats: MiningStats::default() };
        assert_eq!(outcome.num_rules(), 0);
    }
}
