//! Parallel SEQUENTIAL mining (feature `parallel`).
//!
//! The SEQUENTIAL algorithm's phase 1 mines every time unit
//! independently, which parallelises embarrassingly: the units are split
//! into contiguous chunks, each worker thread mines its chunk with the
//! ordinary per-unit Apriori + rule generation, and the per-rule binary
//! sequences are merged afterwards. Phase 2 (cycle detection) is cheap
//! and stays single-threaded. Results are bit-for-bit identical to
//! [`mine_sequential`](crate::sequential::mine_sequential).

use std::time::Instant;

use car_apriori::hash::FastHashMap;
use car_apriori::{generate_rules, Apriori, AprioriConfig, Rule};
use car_cycles::{detect_cycles, minimal_cycles, BitSeq};
use car_itemset::SegmentedDb;

use crate::config::{ConfigError, MiningConfig};
use crate::result::{CyclicRule, MiningOutcome, MiningStats};

/// Mines cyclic association rules with the SEQUENTIAL algorithm using
/// `num_threads` worker threads for the per-unit phase.
///
/// `num_threads == 0` selects the available parallelism.
///
/// # Errors
///
/// Returns a [`ConfigError`] when the configuration is invalid for the
/// database.
pub fn mine_sequential_parallel(
    db: &SegmentedDb,
    config: &MiningConfig,
    num_threads: usize,
) -> Result<MiningOutcome, ConfigError> {
    config.validate_for(db.num_units())?;
    let n = db.num_units();
    let threads = if num_threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        num_threads
    }
    .clamp(1, n.max(1));

    let mut stats = MiningStats {
        num_units: n,
        num_transactions: db.num_transactions(),
        ..Default::default()
    };

    let phase1_start = Instant::now();
    let mut apriori_config =
        AprioriConfig::new(config.min_support).with_counting(config.counting);
    if let Some(cap) = config.max_itemset_size {
        apriori_config = apriori_config.with_max_size(cap);
    }

    // Contiguous unit ranges, one per worker.
    let chunk = n.div_ceil(threads);
    type UnitRules = Vec<(usize, Vec<Rule>)>;
    let per_chunk: Vec<(UnitRules, u64, u64)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..threads {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(n);
            if lo >= hi {
                continue;
            }
            let apriori = Apriori::new(apriori_config);
            let min_confidence = config.min_confidence;
            handles.push(scope.spawn(move || {
                let mut out: UnitRules = Vec::with_capacity(hi - lo);
                let mut support_computations = 0u64;
                let mut rules_checked = 0u64;
                for unit in lo..hi {
                    let (frequent, apriori_stats) =
                        apriori.mine_with_stats(db.unit(unit));
                    support_computations += apriori_stats.candidates_counted;
                    let rules = generate_rules(&frequent, min_confidence);
                    rules_checked += rules.len() as u64;
                    out.push((unit, rules.into_iter().map(|r| r.rule).collect()));
                }
                (out, support_computations, rules_checked)
            }));
        }
        join_all(handles)
    });

    let mut sequences: FastHashMap<Rule, BitSeq> = FastHashMap::default();
    for (unit_rules, support_computations, rules_checked) in per_chunk {
        stats.support_computations += support_computations;
        stats.candidates_generated += support_computations;
        stats.rules_checked += rules_checked;
        for (unit, rules) in unit_rules {
            for rule in rules {
                sequences.entry(rule).or_insert_with(|| BitSeq::zeros(n)).set(unit, true);
            }
        }
    }
    stats.phase1 = phase1_start.elapsed();

    let phase2_start = Instant::now();
    let mut rules: Vec<CyclicRule> = Vec::new();
    for (rule, seq) in sequences {
        let set = detect_cycles(&seq, config.cycle_bounds);
        if set.is_empty() {
            continue;
        }
        rules.push(CyclicRule { rule, cycles: minimal_cycles(&set) });
    }
    rules.sort();
    stats.phase2 = phase2_start.elapsed();

    Ok(MiningOutcome { rules, stats })
}

/// Joins every worker handle, then re-raises the first panic payload
/// (if any) on the calling thread.
///
/// Joining *all* handles before resuming matters: aborting at the
/// first panicked worker would leave the rest running while the scope
/// unwinds, and `std::thread::scope` would then block on (and possibly
/// double-panic over) the stragglers. This way every worker has fully
/// stopped before the caller observes the panic, and a successful join
/// never mixes partial results into the output.
fn join_all<T>(handles: Vec<std::thread::ScopedJoinHandle<'_, T>>) -> Vec<T> {
    let mut out = Vec::with_capacity(handles.len());
    let mut panicked = None;
    for handle in handles {
        match handle.join() {
            Ok(value) => out.push(value),
            Err(payload) => {
                if panicked.is_none() {
                    panicked = Some(payload);
                }
            }
        }
    }
    if let Some(payload) = panicked {
        std::panic::resume_unwind(payload);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::mine_sequential;
    use car_itemset::ItemSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    fn db(units: usize) -> SegmentedDb {
        SegmentedDb::from_unit_itemsets(
            (0..units)
                .map(|u| {
                    if u % 3 == 0 {
                        vec![set(&[1, 2]), set(&[1, 2]), set(&[2, 3])]
                    } else if u % 3 == 1 {
                        vec![set(&[4, 5]); 3]
                    } else {
                        vec![set(&[1, 2]), set(&[4, 5]), set(&[6])]
                    }
                })
                .collect(),
        )
    }

    fn config() -> MiningConfig {
        MiningConfig::builder()
            .min_support_fraction(0.4)
            .min_confidence(0.5)
            .cycle_bounds(2, 6)
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_matches_serial() {
        let db = db(18);
        let cfg = config();
        let serial = mine_sequential(&db, &cfg).unwrap();
        for threads in [1usize, 2, 3, 7, 0] {
            let parallel = mine_sequential_parallel(&db, &cfg, threads).unwrap();
            assert_eq!(serial.rules, parallel.rules, "threads={threads}");
            assert_eq!(
                serial.stats.support_computations,
                parallel.stats.support_computations
            );
            assert_eq!(serial.stats.rules_checked, parallel.stats.rules_checked);
        }
    }

    #[test]
    fn more_threads_than_units() {
        let db = db(6);
        let cfg = config();
        let serial = mine_sequential(&db, &cfg).unwrap();
        let parallel = mine_sequential_parallel(&db, &cfg, 64).unwrap();
        assert_eq!(serial.rules, parallel.rules);
    }

    #[test]
    fn rejects_bad_window() {
        let db = db(3);
        let cfg = config(); // l_max 6 > 3 units
        assert!(mine_sequential_parallel(&db, &cfg, 2).is_err());
    }

    #[test]
    fn join_all_propagates_panic_after_joining_every_worker() {
        let finished = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|scope| {
                let slow = scope.spawn(|| {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    finished.fetch_add(1, Ordering::SeqCst);
                    7
                });
                let bad = scope.spawn(|| panic!("worker exploded"));
                join_all(vec![bad, slow])
            })
        }));
        let payload = caught.expect_err("panic must propagate to the caller");
        let message = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(message, "worker exploded");
        // The slow worker ran to completion before the payload resumed.
        assert_eq!(finished.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn join_all_returns_results_in_handle_order() {
        let values = std::thread::scope(|scope| {
            let handles = (0..4).map(|i| scope.spawn(move || i * 10)).collect::<Vec<_>>();
            join_all(handles)
        });
        assert_eq!(values, vec![0, 10, 20, 30]);
    }
}
