//! Property tests for the deterministic fault schedule.
//!
//! The chaos proxy's whole value is reproducibility: a failure seen
//! once under `--seed S` must be reproducible forever from `S` alone.
//! These properties pin that down — the per-connection plan is a pure
//! function of `(seed, conn_id, config)`, identical seeds give
//! byte-identical traces, and distinct seeds actually diverge (a
//! constant function would also be "deterministic").

use car_chaos::{ConnAction, FaultSchedule, ScheduleConfig};
use proptest::prelude::*;

/// A config with every fault class enabled, magnitudes drawn wide
/// enough that two seeds almost surely disagree somewhere.
fn arb_config() -> impl Strategy<Value = ScheduleConfig> {
    (
        (0.0f64..=1.0, 0u64..100, 1_000u64..10_000),
        (0.0f64..=1.0, 16u64..100_000),
        (0.0f64..=1.0, 0u64..100, 1_000u64..100_000),
        (0.0f64..=0.5, 0.0f64..=1.0, 1u32..64),
    )
        .prop_map(
            |(
                (delay_p, delay_lo, delay_span),
                (throttle_p, throttle_bps),
                (reset_p, reset_lo, reset_span),
                (blackhole_prob, corrupt_p, corrupt_per_kb),
            )| ScheduleConfig {
                delay: Some((delay_p, delay_lo, delay_lo + delay_span)),
                throttle: Some((throttle_p, throttle_bps)),
                reset: Some((reset_p, reset_lo, reset_lo + reset_span)),
                blackhole_prob,
                corrupt: Some((corrupt_p, corrupt_per_kb)),
                partitions: Vec::new(),
            },
        )
}

/// The trace a proxy with this seed would record for the first `conns`
/// connections, through the same accept-order path the proxy uses.
fn trace_for(seed: u64, conns: u64, config: &ScheduleConfig) -> Vec<String> {
    let schedule = FaultSchedule::new(config.clone(), seed);
    for _ in 0..conns {
        schedule.plan_conn();
    }
    schedule.trace()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn same_seed_means_identical_trace(
        seed in any::<u64>(),
        config in arb_config(),
    ) {
        // Two independent schedules (fresh state, re-drawn plans) must
        // agree byte for byte — decide() is pure in (seed, conn, cfg).
        prop_assert_eq!(
            trace_for(seed, 32, &config),
            trace_for(seed, 32, &config)
        );
    }

    #[test]
    fn different_seeds_diverge(
        seed in any::<u64>(),
        bump in 1u64..1_000,
    ) {
        // Delay always fires with a 9000-value range: 32 connections
        // agreeing across two seeds by chance is ~(1/9000)^32.
        let config = ScheduleConfig {
            delay: Some((1.0, 0, 9_000)),
            ..ScheduleConfig::default()
        };
        let a = trace_for(seed, 32, &config);
        let b = trace_for(seed.wrapping_add(bump), 32, &config);
        prop_assert_ne!(a, b);
    }

    #[test]
    fn plans_respect_configured_magnitudes(
        seed in any::<u64>(),
        conn_id in 0u64..10_000,
        config in arb_config(),
    ) {
        let plan = FaultSchedule::decide(seed, conn_id, &config);
        if let Some(delay) = plan.delay {
            let (_, lo, hi) = config.delay.unwrap_or((0.0, 0, 0));
            let ms = u64::try_from(delay.as_millis()).unwrap_or(u64::MAX);
            prop_assert!((lo..=hi).contains(&ms), "delay {ms} outside {lo}..={hi}");
        }
        if let Some(bps) = plan.throttle_bytes_per_sec {
            prop_assert_eq!(bps, config.throttle.unwrap_or((0.0, 0)).1);
        }
        if let ConnAction::Reset { after_bytes } = plan.action {
            let (_, lo, hi) = config.reset.unwrap_or((0.0, 0, 0));
            prop_assert!(
                (lo..=hi).contains(&after_bytes),
                "reset budget {after_bytes} outside {lo}..={hi}"
            );
        }
    }

    #[test]
    fn probability_extremes_are_certainties(
        seed in any::<u64>(),
        conn_id in 0u64..10_000,
    ) {
        // prob=1 always fires, prob=0 never does, for every draw.
        let always = ScheduleConfig {
            delay: Some((1.0, 5, 10)),
            throttle: Some((1.0, 512)),
            corrupt: Some((1.0, 8)),
            ..ScheduleConfig::default()
        };
        let plan = FaultSchedule::decide(seed, conn_id, &always);
        prop_assert!(plan.delay.is_some_and(|d| d.as_millis() >= 5));
        prop_assert_eq!(plan.throttle_bytes_per_sec, Some(512));
        prop_assert_eq!(plan.corrupt_period, Some(128));

        let never = ScheduleConfig {
            delay: Some((0.0, 5, 10)),
            throttle: Some((0.0, 512)),
            reset: Some((0.0, 0, 10)),
            blackhole_prob: 0.0,
            corrupt: Some((0.0, 8)),
            partitions: Vec::new(),
        };
        let plan = FaultSchedule::decide(seed, conn_id, &never);
        prop_assert_eq!(plan.delay, None);
        prop_assert_eq!(plan.throttle_bytes_per_sec, None);
        prop_assert!(matches!(plan.action, ConnAction::Pass));
        prop_assert_eq!(plan.corrupt_period, None);
    }
}
