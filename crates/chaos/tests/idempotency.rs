//! Idempotency-aware retry through the chaos proxy.
//!
//! The dangerous retry is a POST whose first attempt died *after* some
//! request bytes reached the wire: the server may have applied it, so
//! blindly retrying can double-ingest a unit. `RetryingClient` must
//! give up on such a POST but retry a GET through the identical fault
//! freely. The chaos proxy makes the scenario exact: `reset prob=1
//! after_bytes=16` cuts every connection 16 forwarded bytes in — mid
//! request head, after the client has written.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use car_chaos::{run_proxy, ChaosConfig, ChaosHandle, ScheduleConfig};
use car_serve::{RetryPolicy, RetryingClient};

/// A minimal upstream: answers every parseable exchange with 200 and
/// an empty JSON body, drops broken connections silently.
fn spawn_upstream() -> (String, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
    let addr = listener.local_addr().expect("upstream addr").to_string();
    listener.set_nonblocking(true).expect("nonblocking");
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        while !stop_flag.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                    let mut buf = [0u8; 4096];
                    let mut head = Vec::new();
                    // Read until the blank line or a broken connection.
                    loop {
                        match stream.read(&mut buf) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => {
                                head.extend_from_slice(&buf[..n]);
                                if head.windows(4).any(|w| w == b"\r\n\r\n") {
                                    let _ = stream.write_all(
                                        b"HTTP/1.1 200 OK\r\ncontent-type: \
                                          application/json\r\ncontent-length: \
                                          2\r\n\r\n{}",
                                    );
                                    break;
                                }
                            }
                        }
                    }
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    });
    (addr, stop, handle)
}

/// A proxy that resets every connection after 16 forwarded bytes.
fn reset_proxy(upstream: &str) -> ChaosHandle {
    run_proxy(ChaosConfig {
        listen: "127.0.0.1:0".into(),
        upstream: upstream.to_string(),
        seed: 7,
        schedule: ScheduleConfig {
            reset: Some((1.0, 16, 16)),
            ..ScheduleConfig::default()
        },
        arm_on_start: false,
    })
    .expect("proxy boots")
}

fn client_for(handle: &ChaosHandle, max_retries: u32) -> RetryingClient {
    RetryingClient::with_seed(
        handle.addr().to_string(),
        RetryPolicy { max_retries, timeout: Duration::from_millis(500) },
        99,
    )
}

#[test]
fn half_written_post_is_not_retried_but_gets_are() {
    let (upstream, stop, upstream_thread) = spawn_upstream();
    let mut proxy = reset_proxy(&upstream);

    // POST through the always-reset proxy: the head is longer than the
    // 16-byte budget, so the failure lands after request bytes were
    // written. One connection in the trace — no retry — and no answer.
    let mut client = client_for(&proxy, 3);
    let resp = client.request("POST", "/v1/units", Some(b"{\"transactions\":[[1]]}"));
    assert!(resp.is_none(), "half-written POST must not produce a response");
    assert_eq!(
        proxy.trace().len(),
        1,
        "a POST that died after writing must burn exactly one connection: {:?}",
        proxy.trace()
    );

    // GET through the same fault: idempotent, so every retry is spent.
    // max_retries=3 ⇒ up to 4 connections beyond the POST's single one.
    let mut client = client_for(&proxy, 3);
    let resp = client.request("GET", "/v1/rules", None);
    assert!(resp.is_none(), "every attempt is reset; there is no answer");
    let gets = proxy.trace().len() - 1;
    assert!(
        (2..=4).contains(&gets),
        "an idempotent GET must retry (2-4 connections), saw {gets}: {:?}",
        proxy.trace()
    );

    proxy.stop();
    stop.store(true, Ordering::Relaxed);
    upstream_thread.join().expect("upstream thread");
}

#[test]
fn post_succeeds_when_the_budget_outlives_the_exchange() {
    let (upstream, stop, upstream_thread) = spawn_upstream();
    // Reset only after 1 MiB: the whole exchange fits comfortably.
    let mut proxy = run_proxy(ChaosConfig {
        listen: "127.0.0.1:0".into(),
        upstream: upstream.clone(),
        seed: 7,
        schedule: ScheduleConfig {
            reset: Some((1.0, 1 << 20, 1 << 20)),
            ..ScheduleConfig::default()
        },
        arm_on_start: false,
    })
    .expect("proxy boots");
    let mut client = client_for(&proxy, 1);
    let resp = client.request("POST", "/v1/units", Some(b"{}"));
    assert_eq!(resp.map(|r| r.status), Some(200));

    proxy.stop();
    stop.store(true, Ordering::Relaxed);
    upstream_thread.join().expect("upstream thread");
}

/// The transport-level contract underneath the policy: the raw client
/// reports `written = true` for the half-written exchange, which is
/// exactly the signal `RetryingClient` keys the POST give-up on.
#[test]
fn try_request_reports_bytes_were_written() {
    let (upstream, stop, upstream_thread) = spawn_upstream();
    let mut proxy = reset_proxy(&upstream);
    let mut client = car_serve::Client::connect_with_timeout(
        &proxy.addr().to_string(),
        Duration::from_millis(500),
    )
    .expect("connect through proxy");
    let err = client
        .try_request("POST", "/v1/units", &[], Some(b"{}"))
        .expect_err("the exchange must fail");
    assert!(err.written, "the request head went out before the reset");

    proxy.stop();
    stop.store(true, Ordering::Relaxed);
    upstream_thread.join().expect("upstream thread");
}
