//! The seeded fault schedule: every per-connection decision is a pure
//! function of `(seed, connection id)`, so a chaos run is reproducible
//! from its seed alone.
//!
//! The generator is the same splitmix64 mixer the shard ring uses for
//! rendezvous hashing: each connection gets an independent stream
//! seeded from `mix(seed ^ mix(conn_id))`, and every decision draws
//! from that stream in a fixed order regardless of which faults are
//! enabled — so enabling a fault never perturbs the draws of another.
//!
//! A [`FaultSchedule`] also records a human-readable trace line per
//! connection. Two proxies with the same seed, schedule, and
//! connection order produce byte-identical traces; the determinism
//! test asserts exactly that.
//!
//! ## Schedule files
//!
//! One directive per line, `key=value` fields, `#` comments:
//!
//! ```text
//! delay     prob=0.5  ms=10..80          # pre-forward delay per connection
//! throttle  prob=0.25 bytes_per_sec=4096 # slow-loris both directions
//! reset     prob=0.1  after_bytes=0..256 # cut the connection mid-stream
//! blackhole prob=0.05                    # accept, then silence
//! corrupt   prob=0.1  per_kb=2           # flip ~N bits per KiB forwarded
//! partition start_ms=1000 duration_ms=2000 dir=both
//! ```
//!
//! Partition windows are relative to an *epoch* the proxy arms at start
//! (or later, via [`crate::ChaosHandle::arm_partitions`], so tests can
//! stage healthy traffic first). `dir` is `both`, `to_upstream`
//! (client bytes dropped), or `to_downstream` (server bytes dropped).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// splitmix64's output mixer — the same bit-mixing construction
/// `car_shard::ring` uses, so fault placement quality matches the
/// sharding hash.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic splitmix64 draw stream.
struct Draws {
    state: u64,
}

impl Draws {
    fn for_conn(seed: u64, conn_id: u64) -> Draws {
        Draws { state: mix(seed ^ mix(conn_id)) }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// A draw in `[0, 1)`, using the top 53 bits. Scaling by the exact
    /// power-of-two constant is bit-identical to dividing by `2^53`.
    fn next_f64(&mut self) -> f64 {
        const TWO_NEG_53: f64 = 1.110_223_024_625_156_5e-16;
        (self.next() >> 11) as f64 * TWO_NEG_53
    }

    /// A draw in `lo..=hi` (inclusive; `lo` when the range is empty).
    fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        let span = hi.saturating_sub(lo).saturating_add(1);
        lo.saturating_add(self.next().checked_rem(span).unwrap_or(0))
    }
}

/// Which direction a partition window blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Both directions: the link is fully cut.
    Both,
    /// Client-to-upstream bytes are dropped (requests vanish).
    ToUpstream,
    /// Upstream-to-client bytes are dropped (responses vanish).
    ToDownstream,
}

impl Direction {
    /// Whether this partition direction blocks traffic flowing
    /// client-to-upstream (`true`) / upstream-to-client (`false`).
    pub fn blocks(self, to_upstream: bool) -> bool {
        match self {
            Direction::Both => true,
            Direction::ToUpstream => to_upstream,
            Direction::ToDownstream => !to_upstream,
        }
    }

    /// The schedule-file spelling of this direction.
    pub fn label(self) -> &'static str {
        match self {
            Direction::Both => "both",
            Direction::ToUpstream => "to_upstream",
            Direction::ToDownstream => "to_downstream",
        }
    }
}

/// A timed partition window, relative to the armed epoch.
#[derive(Clone, Copy, Debug)]
pub struct PartitionWindow {
    /// Offset from the epoch at which the partition begins.
    pub start: Duration,
    /// How long the partition lasts.
    pub duration: Duration,
    /// Which direction is blocked.
    pub dir: Direction,
}

/// Parsed fault configuration (probabilities and magnitudes).
#[derive(Clone, Debug, Default)]
pub struct ScheduleConfig {
    /// `(probability, min ms, max ms)` pre-forward delay.
    pub delay: Option<(f64, u64, u64)>,
    /// `(probability, bytes/sec)` byte-rate throttle, both directions.
    pub throttle: Option<(f64, u64)>,
    /// `(probability, min bytes, max bytes)` connection reset after a
    /// drawn number of forwarded bytes.
    pub reset: Option<(f64, u64, u64)>,
    /// Probability of accepting the connection and never forwarding.
    pub blackhole_prob: f64,
    /// `(probability, bits per KiB)` bit corruption of forwarded bytes.
    pub corrupt: Option<(f64, u32)>,
    /// Timed partition windows, relative to the armed epoch.
    pub partitions: Vec<PartitionWindow>,
}

impl ScheduleConfig {
    /// Parses a schedule file (see the module docs for the grammar).
    ///
    /// # Errors
    ///
    /// A message naming the first malformed line.
    pub fn parse(text: &str) -> Result<ScheduleConfig, String> {
        let mut config = ScheduleConfig::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            let directive = fields.next().unwrap_or("");
            let mut get = Fields::parse(fields, lineno)?;
            match directive {
                "delay" => {
                    let prob = get.prob()?;
                    let (lo, hi) = get.range("ms")?;
                    config.delay = Some((prob, lo, hi));
                }
                "throttle" => {
                    let prob = get.prob()?;
                    let bps = get.u64("bytes_per_sec")?;
                    if bps == 0 {
                        return Err(format!(
                            "line {}: bytes_per_sec must be positive",
                            lineno + 1
                        ));
                    }
                    config.throttle = Some((prob, bps));
                }
                "reset" => {
                    let prob = get.prob()?;
                    let (lo, hi) = get.range("after_bytes")?;
                    config.reset = Some((prob, lo, hi));
                }
                "blackhole" => config.blackhole_prob = get.prob()?,
                "corrupt" => {
                    let prob = get.prob()?;
                    let per_kb = get.u64("per_kb")?;
                    let per_kb = u32::try_from(per_kb.clamp(1, 8192)).unwrap_or(1);
                    config.corrupt = Some((prob, per_kb));
                }
                "partition" => {
                    let start = Duration::from_millis(get.u64("start_ms")?);
                    let duration = Duration::from_millis(get.u64("duration_ms")?);
                    let dir = match get.str("dir").unwrap_or("both") {
                        "both" => Direction::Both,
                        "to_upstream" => Direction::ToUpstream,
                        "to_downstream" => Direction::ToDownstream,
                        other => {
                            return Err(format!(
                                "line {}: unknown partition dir `{other}`",
                                lineno + 1
                            ))
                        }
                    };
                    config.partitions.push(PartitionWindow { start, duration, dir });
                }
                other => {
                    return Err(format!(
                        "line {}: unknown directive `{other}`",
                        lineno + 1
                    ))
                }
            }
        }
        Ok(config)
    }
}

/// `key=value` field accessor for one schedule line.
struct Fields {
    pairs: Vec<(String, String)>,
    lineno: usize,
}

impl Fields {
    fn parse<'a>(
        fields: impl Iterator<Item = &'a str>,
        lineno: usize,
    ) -> Result<Fields, String> {
        let mut pairs = Vec::new();
        for field in fields {
            let Some((k, v)) = field.split_once('=') else {
                return Err(format!(
                    "line {}: expected key=value, got `{field}`",
                    lineno + 1
                ));
            };
            pairs.push((k.to_string(), v.to_string()));
        }
        Ok(Fields { pairs, lineno })
    }

    fn str(&self, key: &str) -> Option<&str> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn u64(&mut self, key: &str) -> Result<u64, String> {
        let raw = self
            .str(key)
            .ok_or_else(|| format!("line {}: missing {key}=", self.lineno + 1))?;
        raw.parse::<u64>()
            .map_err(|_| format!("line {}: invalid {key} `{raw}`", self.lineno + 1))
    }

    fn prob(&mut self) -> Result<f64, String> {
        let raw = self
            .str("prob")
            .ok_or_else(|| format!("line {}: missing prob=", self.lineno + 1))?;
        match raw.parse::<f64>() {
            Ok(p) if (0.0..=1.0).contains(&p) => Ok(p),
            _ => {
                Err(format!("line {}: prob must be 0..=1, got `{raw}`", self.lineno + 1))
            }
        }
    }

    /// A `key=lo..hi` (or `key=n`, meaning `n..n`) inclusive range.
    fn range(&mut self, key: &str) -> Result<(u64, u64), String> {
        let raw = self
            .str(key)
            .ok_or_else(|| format!("line {}: missing {key}=", self.lineno + 1))?;
        let (lo, hi) = match raw.split_once("..") {
            Some((lo, hi)) => (lo, hi),
            None => (raw, raw),
        };
        let parse = |s: &str| {
            s.parse::<u64>()
                .map_err(|_| format!("line {}: invalid {key} `{raw}`", self.lineno + 1))
        };
        let (lo, hi) = (parse(lo)?, parse(hi)?);
        if hi < lo {
            return Err(format!("line {}: {key} range is inverted", self.lineno + 1));
        }
        Ok((lo, hi))
    }
}

/// What happens to one connection's byte stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnAction {
    /// Forward normally (possibly delayed / throttled / corrupted).
    Pass,
    /// Cut the connection after this many forwarded bytes (total, both
    /// directions).
    Reset {
        /// Forwarded-byte budget before the cut.
        after_bytes: u64,
    },
    /// Accept, read, and never forward or answer.
    BlackHole,
}

/// The fault plan for one proxied connection.
#[derive(Clone, Copy, Debug)]
pub struct ConnPlan {
    /// Connection ordinal (accept order; the trace key).
    pub conn_id: u64,
    /// Sleep before the first byte is forwarded.
    pub delay: Option<Duration>,
    /// Byte-rate cap per direction, bytes per second.
    pub throttle_bytes_per_sec: Option<u64>,
    /// Terminal disposition of the stream.
    pub action: ConnAction,
    /// Corrupt one bit every `period` forwarded bytes (`None` = clean).
    pub corrupt_period: Option<u32>,
}

impl ConnPlan {
    fn trace_line(&self) -> String {
        let action = match self.action {
            ConnAction::Pass => "pass".to_string(),
            ConnAction::Reset { after_bytes } => format!("reset:{after_bytes}"),
            ConnAction::BlackHole => "blackhole".to_string(),
        };
        format!(
            "conn={} delay_ms={} throttle_bps={} action={} corrupt_period={}",
            self.conn_id,
            self.delay.map_or(0, |d| d.as_millis() as u64),
            self.throttle_bytes_per_sec.unwrap_or(0),
            action,
            self.corrupt_period.unwrap_or(0),
        )
    }
}

/// The seeded schedule: per-connection fault plans plus the recorded
/// trace.
pub struct FaultSchedule {
    seed: u64,
    config: ScheduleConfig,
    next_conn: AtomicU64,
    trace: Mutex<Vec<String>>,
}

impl FaultSchedule {
    /// Builds a schedule from a parsed config and a seed.
    pub fn new(config: ScheduleConfig, seed: u64) -> FaultSchedule {
        FaultSchedule {
            seed,
            config,
            next_conn: AtomicU64::new(0),
            trace: Mutex::new(Vec::new()),
        }
    }

    /// The seed this schedule draws from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The parsed fault configuration.
    pub fn config(&self) -> &ScheduleConfig {
        &self.config
    }

    /// Pure decision function: the plan for connection `conn_id` under
    /// `(seed, config)`. Exposed so tests can assert determinism
    /// without a socket in sight.
    pub fn decide(seed: u64, conn_id: u64, config: &ScheduleConfig) -> ConnPlan {
        let mut draws = Draws::for_conn(seed, conn_id);
        // Fixed draw order: every fault consumes its draws whether or
        // not it is enabled or triggered, so schedules with different
        // fault sets still agree on the shared draws.
        let delay_p = draws.next_f64();
        let delay_ms = {
            let (lo, hi) = config.delay.map_or((0, 0), |(_, lo, hi)| (lo, hi));
            draws.next_range(lo, hi)
        };
        let throttle_p = draws.next_f64();
        let reset_p = draws.next_f64();
        let reset_bytes = {
            let (lo, hi) = config.reset.map_or((0, 0), |(_, lo, hi)| (lo, hi));
            draws.next_range(lo, hi)
        };
        let blackhole_p = draws.next_f64();
        let corrupt_p = draws.next_f64();

        let delay = config
            .delay
            .filter(|&(p, _, _)| delay_p < p)
            .map(|_| Duration::from_millis(delay_ms));
        let throttle_bytes_per_sec =
            config.throttle.filter(|&(p, _)| throttle_p < p).map(|(_, bps)| bps);
        // Black-hole wins over reset: silence subsumes a late cut.
        let action = if blackhole_p < config.blackhole_prob {
            ConnAction::BlackHole
        } else if config.reset.is_some_and(|(p, _, _)| reset_p < p) {
            ConnAction::Reset { after_bytes: reset_bytes }
        } else {
            ConnAction::Pass
        };
        let corrupt_period = config
            .corrupt
            .filter(|&(p, _)| corrupt_p < p)
            .map(|(_, per_kb)| 1024u32.checked_div(per_kb.max(1)).unwrap_or(1024).max(1));
        ConnPlan { conn_id, delay, throttle_bytes_per_sec, action, corrupt_period }
    }

    /// Assigns the next connection id, decides its plan, and records
    /// the trace line.
    pub fn plan_conn(&self) -> ConnPlan {
        let conn_id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        let plan = Self::decide(self.seed, conn_id, &self.config);
        if let Ok(mut trace) = self.trace.lock() {
            trace.push(plan.trace_line());
        }
        plan
    }

    /// The recorded per-connection fault trace, in accept order.
    pub fn trace(&self) -> Vec<String> {
        self.trace.lock().map(|t| t.clone()).unwrap_or_default()
    }

    /// The active partition direction at `elapsed` past the armed
    /// epoch, if any. `Both` dominates an asymmetric window.
    pub fn partition_at(&self, elapsed: Duration) -> Option<Direction> {
        let mut active = None;
        for w in &self.config.partitions {
            if elapsed >= w.start && elapsed < w.start.saturating_add(w.duration) {
                if w.dir == Direction::Both {
                    return Some(Direction::Both);
                }
                active = Some(w.dir);
            }
        }
        active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_config() -> ScheduleConfig {
        ScheduleConfig::parse(
            "delay prob=0.5 ms=10..80\n\
             throttle prob=0.4 bytes_per_sec=4096\n\
             reset prob=0.3 after_bytes=0..256\n\
             blackhole prob=0.1\n\
             corrupt prob=0.2 per_kb=2\n\
             partition start_ms=100 duration_ms=200 dir=both\n",
        )
        .unwrap()
    }

    #[test]
    fn parses_the_full_grammar() {
        let config = full_config();
        assert_eq!(config.delay, Some((0.5, 10, 80)));
        assert_eq!(config.throttle, Some((0.4, 4096)));
        assert_eq!(config.reset, Some((0.3, 0, 256)));
        assert_eq!(config.blackhole_prob, 0.1);
        assert_eq!(config.corrupt, Some((0.2, 2)));
        assert_eq!(config.partitions.len(), 1);
        assert_eq!(config.partitions[0].dir, Direction::Both);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "delay ms=10..80",                 // missing prob
            "delay prob=2.0 ms=1..2",          // prob out of range
            "reset prob=0.1 after_bytes=9..1", // inverted range
            "throttle prob=0.1 bytes_per_sec=0",
            "partition start_ms=0 duration_ms=10 dir=sideways",
            "warp prob=0.5",
        ] {
            assert!(ScheduleConfig::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let config =
            ScheduleConfig::parse("# nothing\n\n  delay prob=1 ms=5 # tail\n").unwrap();
        assert_eq!(config.delay, Some((1.0, 5, 5)));
    }

    #[test]
    fn same_seed_same_plans() {
        let config = full_config();
        for conn in 0..64u64 {
            let a = FaultSchedule::decide(42, conn, &config);
            let b = FaultSchedule::decide(42, conn, &config);
            assert_eq!(a.trace_line(), b.trace_line());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let config = full_config();
        let a: Vec<String> =
            (0..64).map(|c| FaultSchedule::decide(1, c, &config).trace_line()).collect();
        let b: Vec<String> =
            (0..64).map(|c| FaultSchedule::decide(2, c, &config).trace_line()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn partition_windows_are_time_bounded() {
        let schedule = FaultSchedule::new(full_config(), 7);
        assert_eq!(schedule.partition_at(Duration::from_millis(50)), None);
        assert_eq!(
            schedule.partition_at(Duration::from_millis(150)),
            Some(Direction::Both)
        );
        assert_eq!(schedule.partition_at(Duration::from_millis(350)), None);
    }

    #[test]
    fn trace_records_in_accept_order() {
        let schedule = FaultSchedule::new(full_config(), 9);
        for _ in 0..5 {
            schedule.plan_conn();
        }
        let trace = schedule.trace();
        assert_eq!(trace.len(), 5);
        for (i, line) in trace.iter().enumerate() {
            assert!(line.starts_with(&format!("conn={i} ")), "{line}");
        }
    }
}
