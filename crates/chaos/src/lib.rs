//! # car-chaos — deterministic network fault injection
//!
//! A zero-dependency, in-process TCP proxy that sits between a client
//! and an upstream and injects faults drawn from a seeded
//! [`FaultSchedule`]: pre-forward delays, byte-rate throttling
//! (slow-loris in both directions), connection resets after a byte
//! budget, black-holes (accept-then-silence), deterministic bit
//! corruption, and timed full/asymmetric partitions.
//!
//! Every per-connection decision is a pure function of
//! `(seed, connection id)` — the same splitmix64 stream construction
//! the shard ring uses — so **the same seed and schedule produce the
//! same fault trace**, byte for byte. That is what makes chaos runs
//! reproducible: a failing CI run prints its seed, and
//! `car chaos --seed S --schedule f` replays the exact fault sequence
//! locally.
//!
//! ```text
//! client ──► car chaos --listen :9000 --upstream :8080 --seed 42 ──► car serve
//! ```
//!
//! The proxy is used by `crates/cli/tests/chaos_cluster.rs` to prove
//! the resilience layer it motivated: the shard router's circuit
//! breakers, deadline propagation, and the serve tier's load shedding.

mod proxy;
mod schedule;

pub use proxy::{run_proxy, ChaosConfig, ChaosHandle};
pub use schedule::{
    ConnAction, ConnPlan, Direction, FaultSchedule, PartitionWindow, ScheduleConfig,
};
