//! The fault-injecting TCP proxy: accepts on `listen`, forwards to
//! `upstream`, and applies each connection's [`ConnPlan`] plus any
//! active partition window.
//!
//! Fault semantics, chosen so the shard router's replay arithmetic
//! stays honest:
//!
//! - **Partition activating mid-connection kills the connection** (both
//!   halves shut down, like a firewall RST) rather than stalling the
//!   bytes. Delivering buffered bytes after the heal would let a
//!   worker's accepted count drift from what the router believes it
//!   routed, corrupting catch-up accounting.
//! - **New connections during a full partition** are accepted and held
//!   in silence until the window ends, then closed — the black-hole
//!   shape real middleboxes produce.
//! - **Reset** cuts both halves once the total forwarded byte budget is
//!   spent; a half-written request stays half-written.
//! - **Black-hole** connections read and discard forever (until EOF or
//!   proxy shutdown) and never answer.
//! - **Throttle** caps bytes/second per direction by shrinking reads
//!   and sleeping between chunks (a cooperative slow-loris).
//! - **Corruption** flips one bit every `period` forwarded bytes at
//!   deterministic stream offsets.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::schedule::{ConnAction, ConnPlan, Direction, FaultSchedule, ScheduleConfig};

/// How often blocked loops re-check shutdown / partition flags.
const POLL: Duration = Duration::from_millis(25);

/// Proxy configuration.
pub struct ChaosConfig {
    /// Address to listen on (e.g. `127.0.0.1:0`).
    pub listen: String,
    /// Address to forward to.
    pub upstream: String,
    /// Seed for the fault schedule.
    pub seed: u64,
    /// Parsed fault schedule.
    pub schedule: ScheduleConfig,
    /// Arm partition windows at proxy start (CLI default). Tests leave
    /// this off and call [`ChaosHandle::arm_partitions`] when staged.
    pub arm_on_start: bool,
}

/// The armed epoch partition windows are measured from.
struct PartitionClock {
    epoch: Mutex<Option<Instant>>,
}

impl PartitionClock {
    fn arm(&self) {
        if let Ok(mut epoch) = self.epoch.lock() {
            *epoch = Some(Instant::now());
        }
    }

    fn elapsed(&self) -> Option<Duration> {
        self.epoch.lock().ok().and_then(|epoch| epoch.map(|e| e.elapsed()))
    }
}

/// A running chaos proxy: its bound address, its schedule (for trace
/// inspection), and shutdown control. Dropping the handle stops the
/// proxy.
pub struct ChaosHandle {
    addr: SocketAddr,
    schedule: Arc<FaultSchedule>,
    clock: Arc<PartitionClock>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl ChaosHandle {
    /// The address the proxy is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The per-connection fault trace recorded so far.
    pub fn trace(&self) -> Vec<String> {
        self.schedule.trace()
    }

    /// (Re-)arms partition windows: offsets in the schedule are
    /// measured from this instant.
    pub fn arm_partitions(&self) {
        self.clock.arm();
    }

    /// Stops the proxy and joins the accept loop.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock a listener that may be parked in accept by poking it.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(100));
        if let Some(handle) = self.accept_thread.take() {
            // audit:allow(a4-discard) reason="joining the accept loop on shutdown; a panicked accept thread has already stopped serving and the payload carries nothing actionable"
            let _ = handle.join();
        }
    }

    /// Blocks until the proxy shuts down (Ctrl-C path for the CLI).
    pub fn wait(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            // audit:allow(a4-discard) reason="joining the accept loop on shutdown; a panicked accept thread has already stopped serving and the payload carries nothing actionable"
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Boots the proxy and returns its handle.
///
/// # Errors
///
/// Propagates listener bind failures.
pub fn run_proxy(config: ChaosConfig) -> io::Result<ChaosHandle> {
    let listener = TcpListener::bind(&config.listen)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let schedule = Arc::new(FaultSchedule::new(config.schedule, config.seed));
    let clock = Arc::new(PartitionClock { epoch: Mutex::new(None) });
    if config.arm_on_start {
        clock.arm();
    }
    let shutdown = Arc::new(AtomicBool::new(false));

    let accept_thread = {
        let schedule = Arc::clone(&schedule);
        let clock = Arc::clone(&clock);
        let shutdown = Arc::clone(&shutdown);
        let upstream = config.upstream;
        thread::Builder::new().name("car-chaos-accept".to_string()).spawn(move || {
            accept_loop(&listener, &upstream, &schedule, &clock, &shutdown);
        })?
    };

    Ok(ChaosHandle {
        addr,
        schedule,
        clock,
        shutdown,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop(
    listener: &TcpListener,
    upstream: &str,
    schedule: &Arc<FaultSchedule>,
    clock: &Arc<PartitionClock>,
    shutdown: &Arc<AtomicBool>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Plans are assigned here, in accept order, so the
                // trace is deterministic even though connections are
                // then handled concurrently.
                let plan = schedule.plan_conn();
                let upstream = upstream.to_string();
                let schedule = Arc::clone(schedule);
                let clock = Arc::clone(clock);
                let shutdown = Arc::clone(shutdown);
                let spawned = thread::Builder::new()
                    .name(format!("car-chaos-conn-{}", plan.conn_id))
                    .spawn(move || {
                        handle_conn(
                            stream, plan, &upstream, &schedule, &clock, &shutdown,
                        );
                    });
                // Spawn failure (thread exhaustion): drop the client
                // connection; the peer sees a reset, which is within
                // the proxy's contract.
                drop(spawned);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
}

/// Sleeps `total` in poll slices, returning early (false) on shutdown.
fn interruptible_sleep(total: Duration, shutdown: &AtomicBool) -> bool {
    let deadline = Instant::now() + total;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return false;
        }
        let now = Instant::now();
        if now >= deadline {
            return true;
        }
        thread::sleep((deadline - now).min(POLL));
    }
}

fn active_partition(
    schedule: &FaultSchedule,
    clock: &PartitionClock,
) -> Option<Direction> {
    clock.elapsed().and_then(|e| schedule.partition_at(e))
}

fn handle_conn(
    client: TcpStream,
    plan: ConnPlan,
    upstream: &str,
    schedule: &Arc<FaultSchedule>,
    clock: &Arc<PartitionClock>,
    shutdown: &Arc<AtomicBool>,
) {
    if let Some(delay) = plan.delay {
        if !interruptible_sleep(delay, shutdown) {
            return;
        }
    }

    // A full partition at accept time: hold the connection in silence
    // until the window ends, then close without ever forwarding.
    if active_partition(schedule, clock) == Some(Direction::Both) {
        while active_partition(schedule, clock) == Some(Direction::Both) {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            thread::sleep(POLL);
        }
        return;
    }

    if plan.action == ConnAction::BlackHole {
        black_hole(client, shutdown);
        return;
    }

    let Ok(server) = TcpStream::connect(upstream) else {
        return;
    };
    let (Ok(client_rd), Ok(server_rd)) = (client.try_clone(), server.try_clone()) else {
        return;
    };

    let shared = Arc::new(ConnShared {
        forwarded: AtomicU64::new(0),
        dead: AtomicBool::new(false),
    });

    let up = {
        let shared = Arc::clone(&shared);
        let schedule = Arc::clone(schedule);
        let clock = Arc::clone(clock);
        let shutdown = Arc::clone(shutdown);
        thread::Builder::new().name(format!("car-chaos-up-{}", plan.conn_id)).spawn(
            move || {
                pump(
                    client_rd, server, true, plan, &shared, &schedule, &clock, &shutdown,
                );
            },
        )
    };
    pump(server_rd, client, false, plan, &shared, schedule, clock, shutdown);
    if let Ok(handle) = up {
        // audit:allow(a4-discard) reason="joining the upstream pump half; a panicked pump has already torn the bridged connection down"
        let _ = handle.join();
    }
}

/// Reads and discards forever; never answers.
fn black_hole(stream: TcpStream, shutdown: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(POLL));
    let mut stream = stream;
    let mut sink = [0u8; 1024];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut sink) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

/// State shared by the two pump directions of one connection.
struct ConnShared {
    /// Total bytes forwarded, both directions (the reset budget).
    forwarded: AtomicU64,
    /// Set when either direction decides the connection must die.
    dead: AtomicBool,
}

/// Cuts both halves of the connection (firewall-RST shape).
fn kill(from: &TcpStream, to: &TcpStream, shared: &ConnShared) {
    shared.dead.store(true, Ordering::SeqCst);
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[allow(clippy::too_many_arguments)]
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    to_upstream: bool,
    plan: ConnPlan,
    shared: &ConnShared,
    schedule: &FaultSchedule,
    clock: &PartitionClock,
    shutdown: &AtomicBool,
) {
    let _ = from.set_read_timeout(Some(POLL));
    // Throttled connections read in small chunks so the rate cap stays
    // smooth and the loop stays responsive to partitions and shutdown.
    let chunk = plan
        .throttle_bytes_per_sec
        .map_or(4096usize, |bps| usize::try_from(bps.clamp(16, 4096)).unwrap_or(4096));
    let mut buf = vec![0u8; chunk];
    // Per-direction stream offset, for deterministic corruption sites.
    let mut offset: u64 = 0;
    loop {
        if shutdown.load(Ordering::SeqCst) || shared.dead.load(Ordering::SeqCst) {
            kill(&from, &to, shared);
            return;
        }
        if let Some(dir) = active_partition(schedule, clock) {
            if dir.blocks(to_upstream) {
                kill(&from, &to, shared);
                return;
            }
        }
        let n = match from.read(&mut buf) {
            Ok(0) => {
                // Half-close: let the other direction finish draining.
                let _ = to.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                kill(&from, &to, shared);
                return;
            }
        };
        let Some(payload) = buf.get_mut(..n) else {
            kill(&from, &to, shared);
            return;
        };

        // Reset budget: truncate to the remaining allowance; once the
        // budget hits zero the connection dies with the tail unsent.
        let mut send_len = payload.len();
        let mut cut_after = false;
        if let ConnAction::Reset { after_bytes } = plan.action {
            let already = shared.forwarded.load(Ordering::SeqCst);
            let allowed = after_bytes.saturating_sub(already);
            if allowed < send_len as u64 {
                send_len = usize::try_from(allowed).unwrap_or(0);
                cut_after = true;
            }
        }

        if send_len > 0 {
            let Some(chunk_out) = payload.get_mut(..send_len) else {
                kill(&from, &to, shared);
                return;
            };
            if let Some(period) = plan.corrupt_period {
                corrupt(chunk_out, offset, u64::from(period));
            }
            offset = offset.wrapping_add(send_len as u64);
            shared.forwarded.fetch_add(send_len as u64, Ordering::SeqCst);
            if to.write_all(chunk_out).and_then(|()| to.flush()).is_err() {
                kill(&from, &to, shared);
                return;
            }
        }
        if cut_after {
            kill(&from, &to, shared);
            return;
        }
        if let Some(bps) = plan.throttle_bytes_per_sec {
            let nanos = (send_len as u64)
                .saturating_mul(1_000_000_000)
                .checked_div(bps.max(1))
                .unwrap_or(0);
            if !interruptible_sleep(Duration::from_nanos(nanos), shutdown) {
                kill(&from, &to, shared);
                return;
            }
        }
    }
}

/// Flips one bit every `period` bytes of the stream, at deterministic
/// offsets: byte `k*period` gets bit `k % 8` flipped.
fn corrupt(chunk: &mut [u8], stream_offset: u64, period: u64) {
    let period = period.max(1);
    for (i, byte) in chunk.iter_mut().enumerate() {
        let pos = stream_offset.wrapping_add(i as u64);
        if pos.checked_rem(period) == Some(0) {
            let bit = pos.checked_div(period).unwrap_or(0) & 7;
            *byte ^= 1u8 << bit;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A tiny line-echo upstream: reads a line, echoes it back.
    fn echo_upstream() -> (SocketAddr, thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let addr = listener.local_addr().expect("echo addr");
        let handle = thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut stream = stream;
                let mut line = String::new();
                while reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                    if stream.write_all(line.as_bytes()).is_err() {
                        break;
                    }
                    let _ = stream.flush();
                    line.clear();
                }
            }
        });
        (addr, handle)
    }

    fn proxy_to(upstream: SocketAddr, schedule: &str, seed: u64) -> ChaosHandle {
        run_proxy(ChaosConfig {
            listen: "127.0.0.1:0".to_string(),
            upstream: upstream.to_string(),
            seed,
            schedule: ScheduleConfig::parse(schedule).expect("schedule"),
            arm_on_start: true,
        })
        .expect("proxy boots")
    }

    #[test]
    fn clean_schedule_forwards_transparently() {
        let (upstream, _echo) = echo_upstream();
        let mut proxy = proxy_to(upstream, "", 1);
        let mut conn = TcpStream::connect(proxy.addr()).expect("connect");
        conn.write_all(b"hello chaos\n").expect("write");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert_eq!(line, "hello chaos\n");
        proxy.stop();
        assert_eq!(proxy.trace().len(), 1);
    }

    #[test]
    fn reset_cuts_the_stream_after_budget() {
        let (upstream, _echo) = echo_upstream();
        // prob=1 with a tiny budget: every connection dies early.
        let mut proxy = proxy_to(upstream, "reset prob=1 after_bytes=4..4", 2);
        let mut conn = TcpStream::connect(proxy.addr()).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
        let _ = conn.write_all(b"hello chaos, this line is longer than four bytes\n");
        let mut buf = Vec::new();
        // Read to EOF/reset: at most 4 bytes can ever come back.
        let _ = conn.read_to_end(&mut buf);
        assert!(buf.len() <= 4, "got {} bytes back", buf.len());
        proxy.stop();
    }

    #[test]
    fn blackhole_never_answers() {
        let (upstream, _echo) = echo_upstream();
        let mut proxy = proxy_to(upstream, "blackhole prob=1", 3);
        let mut conn = TcpStream::connect(proxy.addr()).expect("connect");
        conn.set_read_timeout(Some(Duration::from_millis(300))).expect("timeout");
        conn.write_all(b"anyone home?\n").expect("write");
        let mut buf = [0u8; 16];
        let got = conn.read(&mut buf);
        let silent = matches!(
            got,
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock
                || e.kind() == io::ErrorKind::TimedOut
        ) || matches!(got, Ok(0));
        assert!(silent, "black-holed connection answered: {got:?}");
        proxy.stop();
    }

    #[test]
    fn full_partition_blocks_then_heals() {
        let (upstream, _echo) = echo_upstream();
        let mut proxy =
            proxy_to(upstream, "partition start_ms=0 duration_ms=400 dir=both", 4);
        // During the window: accepted, but silent.
        let mut during = TcpStream::connect(proxy.addr()).expect("connect");
        during.set_read_timeout(Some(Duration::from_millis(200))).expect("timeout");
        let _ = during.write_all(b"lost\n");
        let mut buf = [0u8; 8];
        assert!(!matches!(during.read(&mut buf), Ok(n) if n > 0));
        // After the window: traffic flows again.
        thread::sleep(Duration::from_millis(450));
        let mut after = TcpStream::connect(proxy.addr()).expect("connect");
        after.write_all(b"back\n").expect("write");
        let mut reader = BufReader::new(after.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert_eq!(line, "back\n");
        proxy.stop();
    }

    #[test]
    fn corruption_flips_bits_deterministically() {
        let mut a = *b"abcdefgh";
        let mut b = *b"abcdefgh";
        corrupt(&mut a, 0, 4);
        corrupt(&mut b, 0, 4);
        assert_eq!(a, b);
        assert_ne!(a, *b"abcdefgh");
        // Offsets 0 and 4 are corrupted, the rest untouched.
        assert_eq!(&a[1..4], b"bcd");
        assert_eq!(&a[5..], b"fgh");
    }
}
