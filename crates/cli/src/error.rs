use std::fmt;
use std::io;

/// CLI errors: usage problems, file problems, and invalid mining
/// parameters.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line usage; the message includes guidance.
    Usage(String),
    /// An I/O failure (reading input, writing output).
    Io(io::Error),
    /// Input file could not be parsed.
    Data(car_itemset::Error),
    /// The mining configuration was rejected.
    Config(car_core::ConfigError),
    /// `car audit` found lint violations or could not run.
    Audit(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io(e) => write!(f, "I/O error: {e}"),
            CliError::Data(e) => write!(f, "invalid input data: {e}"),
            CliError::Config(e) => write!(f, "invalid mining configuration: {e}"),
            CliError::Audit(msg) => write!(f, "audit: {msg}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Usage(_) | CliError::Audit(_) => None,
            CliError::Io(e) => Some(e),
            CliError::Data(e) => Some(e),
            CliError::Config(e) => Some(e),
        }
    }
}

impl From<io::Error> for CliError {
    fn from(e: io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<car_itemset::Error> for CliError {
    fn from(e: car_itemset::Error) -> Self {
        CliError::Data(e)
    }
}

impl From<car_core::ConfigError> for CliError {
    fn from(e: car_core::ConfigError) -> Self {
        CliError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(CliError::Usage("nope".into()).to_string(), "nope");
        let e = CliError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("gone"));
        let e = CliError::from(car_core::ConfigError::EmptyDatabase);
        assert!(e.to_string().contains("no time units"));
    }
}
