//! The `car` binary: a thin wrapper around the `car_cli` library.

use std::process::ExitCode;

fn main() -> ExitCode {
    // Honour CAR_LOG / CAR_LOG_FORMAT / CAR_SPANS for every subcommand,
    // so `CAR_LOG=mine=debug car mine …` works without per-command setup.
    car_obs::init_from_env();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match car_cli::run(&argv, &mut out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
