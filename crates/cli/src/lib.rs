//! # car-cli
//!
//! The `car` command line tool: generate temporal transaction data, mine
//! cyclic association rules with either of the ICDE'98 algorithms,
//! inspect databases, and detect cycles in raw binary sequences.
//!
//! The logic lives in this library crate (with the binary a thin wrapper)
//! so integration tests can drive every command in-process.
//!
//! ```text
//! car gen    --units 32 --tx-per-unit 500 --out data.txt --seed 7
//! car mine   --input data.txt --min-support 0.1 --l-min 2 --l-max 8
//! car detect --sequence 011011011 --l-min 2 --l-max 4
//! car stats  --input data.txt
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;
mod error;

pub use args::Args;
pub use error::CliError;

use std::io::Write;

/// Runs the CLI against `argv` (excluding the program name), writing
/// output to `out`. Returns the process exit code.
///
/// # Errors
///
/// Returns a [`CliError`] describing invalid usage or I/O failures.
pub fn run<W: Write>(argv: &[String], out: &mut W) -> Result<(), CliError> {
    if argv.is_empty() {
        return Err(CliError::Usage(USAGE.to_string()));
    }
    let command = argv[0].as_str();
    if command == "audit" {
        // The audit engine owns its flag grammar (e.g. `--format json`);
        // pass everything after `audit` through verbatim.
        return commands::audit::run(&argv[1..], out);
    }
    let args = Args::parse(&argv[1..])?;
    match command {
        "gen" => commands::gen::run(&args, out),
        "analyze" => commands::analyze::run(&args, out),
        "mine" => commands::mine::run(&args, out),
        "detect" => commands::detect::run(&args, out),
        "stats" => commands::stats::run(&args, out),
        "serve" => commands::serve::run(&args, out),
        "shard" => commands::shard::run(&args, out),
        "chaos" => commands::chaos::run(&args, out),
        "trace" => commands::trace::run(&args, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`\n{USAGE}"))),
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
car — cyclic association rules (Özden, Ramaswamy, Silberschatz; ICDE 1998)

USAGE:
    car <COMMAND> [OPTIONS]

COMMANDS:
    gen      Generate a synthetic time-segmented database with planted cycles
             --units N --tx-per-unit N [--items N] [--patterns N]
             [--cyclic N] [--cycle-min L] [--cycle-max L] [--seed S]
             [--out FILE] (stdout if omitted)
    mine     Mine cyclic association rules from a timed transaction file
             --input FILE [--min-support F] [--min-confidence F]
             [--l-min L] [--l-max L] [--algorithm interleaved|sequential|parallel]
             [--no-pruning] [--no-skipping] [--no-elimination]
             [--max-misses M] [--stats [--stats-format human|json]]
             [--report [--top N]]
    detect   Detect cycles in a 0/1 sequence
             --sequence BITS [--l-min L] [--l-max L] [--max-misses M]
             [--spectrum]
    analyze  Per-unit timeline of one rule
             --input FILE --antecedent IDS --consequent IDS
             [--min-support F] [--min-confidence F] [--l-min L] [--l-max L]
             [--per-unit]
    stats    Describe a timed transaction file
             --input FILE
    serve    Run the online rule-serving HTTP daemon
             [--host H] [--port P] [--threads N] [--window N]
             [--queue-capacity N] [--min-support F] [--min-support-count N]
             [--min-confidence F] [--l-min L] [--l-max L]
             [--io-timeout-secs S] [--header-timeout-ms MS] [--max-inflight N]
             [--data-dir DIR]
             [--fsync always|never|every=N] [--snapshot-every N]
             [--shard-id I --shard-count N]
    shard    Run the sharded-cluster router over car-serve workers
             (--workers a:p,b:p,... | --shards N)
             [--host H] [--port P] [--threads N]
             [--partition-key min-item|max-item] [--probe-interval-ms MS]
             [--replay-capacity N] [--retry N] [--timeout-secs S]
             [--breaker-failures N] [--breaker-cooldown-ms MS]
             [--request-budget-ms MS]
             spawn mode forwards: [--min-support-count N] [--min-confidence F]
             [--l-min L] [--l-max L] [--window N] [--queue-capacity N]
    chaos    Run the deterministic fault-injecting TCP proxy
             --listen HOST:PORT --upstream HOST:PORT
             [--seed S] [--schedule FILE]
    trace    Inspect distributed traces retained by a shard router
             --addr HOST:PORT           list retained traces
             --addr HOST:PORT --id HEX  render one trace as an ASCII tree
             [--format tree|chrome] [--out FILE]  (chrome needs --id)
    audit    Run the project's static-analysis lints (panic-freedom,
             lock-order, checked arithmetic, discarded Results,
             taint-to-sink dataflow, atomics discipline)
             [--root DIR] [--format human|json|sarif] [--jobs N]
             [--allow-stale-allows] [--baseline FILE]
             [--write-baseline FILE]
    help     Show this message

ENVIRONMENT:
    CAR_LOG         log filter, e.g. `info` or `mine=debug,wal=info` (default warn)
    CAR_LOG_FORMAT  `logfmt` (default) or `json`
    CAR_SPANS       `1` to enable span timing (see /v1/debug/profile under serve)
";
