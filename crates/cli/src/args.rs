use std::collections::BTreeMap;

use crate::error::CliError;

/// A minimal `--key value` / `--flag` argument parser.
///
/// Hand-rolled to keep the workspace's dependency set to the approved
/// list; sufficient for the CLI's flat option space.
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `argv`. An option `--name` followed by a token that does
    /// not start with `--` consumes it as the option's value; otherwise
    /// it is a boolean flag.
    pub fn parse(argv: &[String]) -> Result<Self, CliError> {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            let name = token.strip_prefix("--").ok_or_else(|| {
                CliError::Usage(format!("expected an option, found `{token}`"))
            })?;
            if name.is_empty() {
                return Err(CliError::Usage("empty option name `--`".into()));
            }
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                args.values.insert(name.to_string(), argv[i + 1].clone());
                i += 2;
            } else {
                args.flags.push(name.to_string());
                i += 1;
            }
        }
        Ok(args)
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A raw option value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A required option value.
    pub fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| CliError::Usage(format!("missing required option --{name}")))
    }

    /// A parsed option with a default.
    pub fn parse_or<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
    ) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                CliError::Usage(format!("invalid value `{raw}` for --{name}"))
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parses_values_and_flags() {
        let a = parse(&["--units", "8", "--stats", "--seed", "42"]);
        assert_eq!(a.get("units"), Some("8"));
        assert_eq!(a.get("seed"), Some("42"));
        assert!(a.flag("stats"));
        assert!(!a.flag("verbose"));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn trailing_option_is_flag() {
        let a = parse(&["--units", "8", "--quiet"]);
        assert!(a.flag("quiet"));
    }

    #[test]
    fn parse_or_with_defaults() {
        let a = parse(&["--units", "8"]);
        assert_eq!(a.parse_or("units", 1usize).unwrap(), 8);
        assert_eq!(a.parse_or("other", 5usize).unwrap(), 5);
        assert!(a.parse_or::<usize>("units", 0).is_ok());
    }

    #[test]
    fn parse_or_rejects_garbage() {
        let a = parse(&["--units", "abc"]);
        assert!(matches!(a.parse_or::<usize>("units", 0), Err(CliError::Usage(_))));
    }

    #[test]
    fn require_reports_missing() {
        let a = parse(&[]);
        assert!(matches!(a.require("input"), Err(CliError::Usage(_))));
    }

    #[test]
    fn rejects_positional_tokens() {
        let argv = vec!["positional".to_string()];
        assert!(matches!(Args::parse(&argv), Err(CliError::Usage(_))));
    }

    #[test]
    fn negative_numbers_are_values() {
        // "-5" does not start with "--", so it is consumed as a value.
        let a = parse(&["--offset", "-5"]);
        assert_eq!(a.get("offset"), Some("-5"));
    }
}
