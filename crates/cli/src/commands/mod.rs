//! The CLI subcommands.

pub mod analyze;
pub mod audit;
pub mod chaos;
pub mod detect;
pub mod gen;
pub mod mine;
pub mod serve;
pub mod shard;
pub mod stats;
pub mod trace;

use std::fs::File;
use std::io::Read;

use car_itemset::{io as car_io, SegmentedDb};

use crate::error::CliError;

/// Loads a timed transaction file (or `-` for stdin).
pub(crate) fn load_db(path: &str) -> Result<SegmentedDb, CliError> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        Ok(car_io::read_timed(buf.as_bytes())?)
    } else {
        Ok(car_io::read_timed(File::open(path)?)?)
    }
}
