//! `car serve` — run the online rule-serving daemon.

use std::io::Write;
use std::time::Duration;

use car_core::MiningConfig;
use car_serve::{serve, FsyncPolicy, PersistConfig, ServerConfig, ShardIdentity};

use crate::args::Args;
use crate::error::CliError;

/// Runs the `serve` command: boots the daemon and blocks until it shuts
/// down (Ctrl-C or `POST /v1/shutdown`), then prints final statistics.
pub fn run<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let host = args.get("host").unwrap_or("127.0.0.1");
    let port: u16 = args.parse_or("port", 7878)?;
    let threads: usize = args.parse_or("threads", 4)?;
    let window: usize = args.parse_or("window", 64)?;
    let queue_capacity: usize = args.parse_or("queue-capacity", 256)?;
    let io_timeout_secs: u64 = args.parse_or("io-timeout-secs", 10)?;
    // Overload protection: 0 disables the respective guard.
    let header_timeout_ms: u64 = args.parse_or("header-timeout-ms", 5_000)?;
    let max_inflight: usize = args.parse_or("max-inflight", 128)?;

    let min_support: f64 = args.parse_or("min-support", 0.05)?;
    let min_confidence: f64 = args.parse_or("min-confidence", 0.6)?;
    let l_min: u32 = args.parse_or("l-min", 2)?;
    let l_max: u32 = args.parse_or("l-max", 16)?;
    let mut builder = MiningConfig::builder()
        .min_support_fraction(min_support)
        .min_confidence(min_confidence)
        .cycle_bounds(l_min, l_max);
    // An absolute support count partitions exactly across shards (a
    // fraction of per-shard transaction volume does not), so the shard
    // router requires its workers to run with --min-support-count.
    if let Some(raw) = args.get("min-support-count") {
        let count: u64 = raw.parse().map_err(|_| {
            CliError::Usage(format!("invalid value `{raw}` for --min-support-count"))
        })?;
        builder = builder.min_support_count(count);
    }
    let mining = builder.build()?;

    let shard = match (args.get("shard-id"), args.get("shard-count")) {
        (None, None) => None,
        (Some(_), None) | (None, Some(_)) => {
            return Err(CliError::Usage(
                "--shard-id and --shard-count must be given together".into(),
            ));
        }
        (Some(_), Some(_)) => {
            let shard_id: u32 = args.parse_or("shard-id", 0)?;
            let shard_count: u32 = args.parse_or("shard-count", 1)?;
            if shard_id >= shard_count {
                return Err(CliError::Usage(format!(
                    "--shard-id {shard_id} out of range for --shard-count {shard_count}"
                )));
            }
            Some(ShardIdentity { shard_id, shard_count })
        }
    };

    let persist = match args.get("data-dir") {
        Some(dir) => {
            let mut persist = PersistConfig::new(dir);
            if let Some(raw) = args.get("fsync") {
                persist.fsync = raw
                    .parse::<FsyncPolicy>()
                    .map_err(|msg| CliError::Usage(format!("--fsync: {msg}")))?;
            }
            persist.snapshot_every = args.parse_or("snapshot-every", 64)?;
            Some(persist)
        }
        None => {
            if args.get("fsync").is_some() || args.get("snapshot-every").is_some() {
                return Err(CliError::Usage(
                    "--fsync/--snapshot-every require --data-dir".into(),
                ));
            }
            None
        }
    };

    let durability = persist.as_ref().map(|p| {
        format!(
            "  durable: data dir {}, fsync {}, snapshot every {} units",
            p.data_dir.display(),
            p.fsync,
            p.snapshot_every
        )
    });

    let config = ServerConfig {
        addr: format!("{host}:{port}"),
        threads,
        window,
        queue_capacity,
        mining,
        io_timeout: Duration::from_secs(io_timeout_secs.max(1)),
        header_timeout: (header_timeout_ms > 0)
            .then(|| Duration::from_millis(header_timeout_ms)),
        max_inflight,
        handle_signals: true,
        persist,
        shard,
        ..ServerConfig::default()
    };

    let handle = serve(config).map_err(|e| match e {
        car_serve::ServeError::Config(c) => CliError::Config(c),
        car_serve::ServeError::Io(io) => CliError::Io(io),
    })?;
    writeln!(out, "car-serve listening on http://{}", handle.addr)?;
    writeln!(
        out,
        "  window {window} units, {threads} workers, queue capacity {queue_capacity}"
    )?;
    if let Some(s) = shard {
        writeln!(out, "  shard {} of {}", s.shard_id, s.shard_count)?;
    }
    if let Some(line) = &durability {
        writeln!(out, "{line}")?;
    }
    writeln!(
        out,
        "  endpoints: POST /v1/units  GET /v1/rules  GET /v1/health  GET /metrics"
    )?;
    writeln!(out, "  debug: GET /v1/debug/profile  GET /v1/debug/events")?;
    writeln!(out, "  stop with Ctrl-C or POST /v1/shutdown")?;
    out.flush()?;

    let stats = handle.wait();
    writeln!(out, "car-serve drained and stopped")?;
    writeln!(
        out,
        "  served {} requests in {:.1}s; ingested {} units ({} evicted, {} retained)",
        stats.requests,
        stats.uptime.as_secs_f64(),
        stats.units_ingested,
        stats.evictions,
        stats.units_retained
    )?;
    Ok(())
}
