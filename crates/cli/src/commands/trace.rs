//! `car trace` — inspect distributed traces retained by a shard router.
//!
//! * `car trace --addr HOST:PORT` lists every retained trace (newest
//!   first) with its duration, span count, and retention reason.
//! * `car trace --addr HOST:PORT --id HEX` renders one assembled trace
//!   as an ASCII tree with per-span durations and attributes.
//! * `... --format chrome [--out FILE]` fetches the same trace as
//!   Chrome `trace_event` JSON, loadable in `chrome://tracing` or
//!   Perfetto.

use std::io::Write;

use car_serve::json::Json;
use car_serve::Client;

use crate::args::Args;
use crate::error::CliError;

/// Runs the `trace` command against a router's `/v1/debug/traces`.
pub fn run<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let addr = args
        .get("addr")
        .ok_or_else(|| CliError::Usage("trace requires --addr HOST:PORT".into()))?;
    let format = args.get("format").unwrap_or("tree");
    if !matches!(format, "tree" | "chrome") {
        return Err(CliError::Usage(format!(
            "invalid --format `{format}` (need tree or chrome)"
        )));
    }

    let mut client = Client::connect(addr)
        .map_err(|e| CliError::Usage(format!("cannot connect to {addr}: {e}")))?;
    let Some(id) = args.get("id") else {
        if format == "chrome" {
            return Err(CliError::Usage(
                "--format chrome requires --id HEX (one trace per export)".into(),
            ));
        }
        return list_traces(&mut client, out);
    };

    let target = if format == "chrome" {
        format!("/v1/debug/traces?trace_id={id}&format=chrome")
    } else {
        format!("/v1/debug/traces?trace_id={id}")
    };
    let resp = client
        .request("GET", &target, None)
        .map_err(|e| CliError::Usage(format!("request to {addr} failed: {e}")))?;
    if resp.status != 200 {
        return Err(CliError::Usage(format!(
            "router answered {}: {}",
            resp.status,
            resp.body_text().trim()
        )));
    }
    if format == "chrome" {
        let body = resp.body_text();
        match args.get("out") {
            Some(path) => {
                std::fs::write(path, &body)?;
                writeln!(
                    out,
                    "wrote {} bytes of trace_event JSON to {path}",
                    body.len()
                )?;
            }
            None => writeln!(out, "{body}")?,
        }
        return Ok(());
    }
    render_tree(&resp.body_text(), out)
}

/// Renders the trace listing as a table.
fn list_traces<W: Write>(client: &mut Client, out: &mut W) -> Result<(), CliError> {
    let resp = client
        .request("GET", "/v1/debug/traces", None)
        .map_err(|e| CliError::Usage(format!("request failed: {e}")))?;
    if resp.status != 200 {
        return Err(CliError::Usage(format!(
            "router answered {}: {}",
            resp.status,
            resp.body_text().trim()
        )));
    }
    let doc = Json::parse(&resp.body_text())
        .map_err(|e| CliError::Usage(format!("unparsable trace listing: {e}")))?;
    let traces: &[Json] = doc.get("traces").and_then(Json::as_array).unwrap_or(&[]);
    writeln!(out, "{} retained trace(s)", traces.len())?;
    if traces.is_empty() {
        return Ok(());
    }
    writeln!(out, "{:<34}{:>12}{:>7}  REASON", "TRACE ID", "DURATION", "SPANS")?;
    for t in traces {
        writeln!(
            out,
            "{:<34}{:>12}{:>7}  {}",
            t.get("trace_id").and_then(Json::as_str).unwrap_or("?"),
            format_us(t.get("duration_us").and_then(Json::as_u64).unwrap_or(0)),
            t.get("spans").and_then(Json::as_u64).unwrap_or(0),
            t.get("reason").and_then(Json::as_str).unwrap_or("?"),
        )?;
    }
    Ok(())
}

/// One span, reduced to what the tree renderer needs.
struct SpanRow {
    uid: String,
    parent: Option<String>,
    name: String,
    dur_us: u64,
    attrs: Vec<(String, String)>,
}

/// Renders one assembled trace as an ASCII tree.
fn render_tree<W: Write>(body: &str, out: &mut W) -> Result<(), CliError> {
    let doc = Json::parse(body)
        .map_err(|e| CliError::Usage(format!("unparsable trace body: {e}")))?;
    let trace_id = doc.get("trace_id").and_then(Json::as_str).unwrap_or("?");
    let reason = doc.get("reason").and_then(Json::as_str).unwrap_or("?");
    let duration_us = doc.get("duration_us").and_then(Json::as_u64).unwrap_or(0);
    let spans: Vec<SpanRow> = doc
        .get("spans")
        .and_then(Json::as_array)
        .map(|spans| spans.iter().filter_map(parse_span).collect())
        .unwrap_or_default();
    writeln!(
        out,
        "trace {trace_id} ({reason}, {}, {} span(s))",
        format_us(duration_us),
        spans.len()
    )?;
    let Some(root) = spans.first() else {
        return Ok(());
    };
    print_subtree(&spans, &root.uid, "", out)
}

/// Prints `uid`'s span and, recursively, its children. Depth is bounded
/// by the span budget (assembly guarantees an acyclic tree).
fn print_subtree<W: Write>(
    spans: &[SpanRow],
    uid: &str,
    prefix: &str,
    out: &mut W,
) -> Result<(), CliError> {
    let Some(span) = spans.iter().find(|s| s.uid == uid) else {
        return Ok(());
    };
    let mut attrs = String::new();
    for (k, v) in &span.attrs {
        attrs.push_str("  ");
        attrs.push_str(k);
        attrs.push('=');
        attrs.push_str(v);
    }
    writeln!(out, "{prefix}{} {}{attrs}", span.name, format_us(span.dur_us))?;
    let children: Vec<&SpanRow> =
        spans.iter().filter(|s| s.parent.as_deref() == Some(uid)).collect();
    let child_prefix = child_indent(prefix);
    for (i, child) in children.iter().enumerate() {
        let connector = if i + 1 == children.len() { "└─ " } else { "├─ " };
        let pipe = if i + 1 == children.len() { "   " } else { "│  " };
        let head = format!("{child_prefix}{connector}");
        // Render the child line, then recurse with a prefix that keeps
        // the tree rails aligned under this connector.
        print_child(spans, &child.uid, &head, &format!("{child_prefix}{pipe}"), out)?;
    }
    Ok(())
}

/// Renders one child line and recurses into its children.
fn print_child<W: Write>(
    spans: &[SpanRow],
    uid: &str,
    head: &str,
    rail: &str,
    out: &mut W,
) -> Result<(), CliError> {
    let Some(span) = spans.iter().find(|s| s.uid == uid) else {
        return Ok(());
    };
    let mut attrs = String::new();
    for (k, v) in &span.attrs {
        attrs.push_str("  ");
        attrs.push_str(k);
        attrs.push('=');
        attrs.push_str(v);
    }
    writeln!(out, "{head}{} {}{attrs}", span.name, format_us(span.dur_us))?;
    let children: Vec<&SpanRow> =
        spans.iter().filter(|s| s.parent.as_deref() == Some(uid)).collect();
    for (i, child) in children.iter().enumerate() {
        let connector = if i + 1 == children.len() { "└─ " } else { "├─ " };
        let pipe = if i + 1 == children.len() { "   " } else { "│  " };
        print_child(
            spans,
            &child.uid,
            &format!("{rail}{connector}"),
            &format!("{rail}{pipe}"),
            out,
        )?;
    }
    Ok(())
}

/// The root's children indent from an empty prefix.
fn child_indent(prefix: &str) -> String {
    if prefix.is_empty() {
        String::new()
    } else {
        format!("{prefix}   ")
    }
}

fn parse_span(doc: &Json) -> Option<SpanRow> {
    Some(SpanRow {
        uid: doc.get("uid").and_then(Json::as_str)?.to_string(),
        parent: doc.get("parent").and_then(Json::as_str).map(str::to_string),
        name: doc.get("name").and_then(Json::as_str)?.to_string(),
        dur_us: doc.get("dur_us").and_then(Json::as_u64).unwrap_or(0),
        attrs: doc
            .get("attrs")
            .and_then(|a| match a {
                Json::Object(fields) => Some(
                    fields
                        .iter()
                        .filter_map(|(k, v)| {
                            v.as_str().map(|v| (k.clone(), v.to_string()))
                        })
                        .collect(),
                ),
                _ => None,
            })
            .unwrap_or_default(),
    })
}

/// Human-readable microseconds: `17µs`, `4.2ms`, `1.78s`.
fn format_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        // audit:allow(a1-div) reason="float division by a non-zero literal cannot panic"
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        // audit:allow(a1-div) reason="float division by a non-zero literal cannot panic"
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_us_picks_sensible_units() {
        assert_eq!(format_us(17), "17µs");
        assert_eq!(format_us(4_200), "4.2ms");
        assert_eq!(format_us(1_780_000), "1.78s");
    }

    #[test]
    fn tree_renders_nested_spans() {
        let body = r#"{
            "trace_id": "00000000000000000000000000000010",
            "reason": "sampled",
            "duration_us": 5000,
            "count": 3,
            "spans": [
                {"uid": "0000000000000001", "parent": null,
                 "name": "router.request", "start_us": 0, "dur_us": 5000,
                 "attrs": {"route": "rules"}},
                {"uid": "0000000000000002", "parent": "0000000000000001",
                 "name": "router.leg.rules", "start_us": 100, "dur_us": 4000,
                 "attrs": {"shard": "0", "outcome": "ok"}},
                {"uid": "0000000000000003", "parent": "0000000000000002",
                 "name": "serve.request", "start_us": 200, "dur_us": 3800,
                 "attrs": {}}
            ]
        }"#;
        let mut out = Vec::new();
        render_tree(body, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("trace 00000000000000000000000000000010"));
        assert!(text.contains("router.request 5.0ms  route=rules"));
        assert!(text.contains("└─ router.leg.rules 4.0ms  shard=0  outcome=ok"));
        assert!(text.contains("   └─ serve.request 3.8ms"));
    }

    #[test]
    fn sibling_rails_stay_aligned() {
        let body = r#"{
            "trace_id": "00000000000000000000000000000010",
            "reason": "slow", "duration_us": 100, "count": 3,
            "spans": [
                {"uid": "000000000000000a", "parent": null, "name": "root",
                 "start_us": 0, "dur_us": 100, "attrs": {}},
                {"uid": "000000000000000b", "parent": "000000000000000a",
                 "name": "first", "start_us": 0, "dur_us": 40, "attrs": {}},
                {"uid": "000000000000000c", "parent": "000000000000000a",
                 "name": "second", "start_us": 50, "dur_us": 40, "attrs": {}}
            ]
        }"#;
        let mut out = Vec::new();
        render_tree(body, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("├─ first"), "{text}");
        assert!(text.contains("└─ second"), "{text}");
    }
}
