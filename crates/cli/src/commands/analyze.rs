//! `car analyze` — per-unit timeline of one rule.

use std::io::Write;

use car_core::analyze::analyze_rule;
use car_core::{MiningConfig, Rule};
use car_itemset::ItemSet;

use crate::args::Args;
use crate::commands::load_db;
use crate::error::CliError;

/// Runs the `analyze` command.
///
/// `--antecedent` and `--consequent` take comma-separated item ids, e.g.
/// `--antecedent 1,2 --consequent 7`.
pub fn run<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let input = args.require("input")?;
    let db = load_db(input)?;

    let antecedent = parse_items(args.require("antecedent")?)?;
    let consequent = parse_items(args.require("consequent")?)?;
    let rule = Rule::new(antecedent, consequent).ok_or_else(|| {
        CliError::Usage("rule sides must be non-empty and disjoint".into())
    })?;

    let min_support: f64 = args.parse_or("min-support", 0.05)?;
    let min_confidence: f64 = args.parse_or("min-confidence", 0.6)?;
    let l_min: u32 = args.parse_or("l-min", 2)?;
    let l_max: u32 = args.parse_or("l-max", 16)?;
    let config = MiningConfig::builder()
        .min_support_fraction(min_support)
        .min_confidence(min_confidence)
        .cycle_bounds(l_min, l_max.min(db.num_units() as u32).max(l_min))
        .build()?;

    let t = analyze_rule(&db, &config, &rule)?;
    writeln!(out, "rule:        {}", t.rule)?;
    writeln!(out, "holds:       {}", t.holds)?;
    writeln!(out, "held in:     {}/{} units", t.units_held(), t.holds.len())?;
    writeln!(
        out,
        "when held:   support {:.3}, confidence {:.3}",
        t.mean_support_when_held(),
        t.mean_confidence_when_held()
    )?;
    if t.is_cyclic() {
        write!(out, "cycles:     ")?;
        for c in &t.cycles {
            write!(out, " {c}")?;
        }
        writeln!(out)?;
    } else {
        writeln!(out, "cycles:      none within bounds")?;
    }
    if args.flag("per-unit") {
        writeln!(out, "unit  holds  support  confidence")?;
        for u in 0..t.holds.len() {
            writeln!(
                out,
                "{:<6}{:<7}{:<9.3}{:<10.3}",
                u,
                if t.holds.get(u) { "yes" } else { "no" },
                t.supports[u],
                t.confidences[u]
            )?;
        }
    }
    Ok(())
}

fn parse_items(raw: &str) -> Result<ItemSet, CliError> {
    let mut ids = Vec::new();
    for tok in raw.split(',') {
        let tok = tok.trim();
        if tok.is_empty() {
            continue;
        }
        ids.push(
            tok.parse::<u32>()
                .map_err(|_| CliError::Usage(format!("invalid item id `{tok}`")))?,
        );
    }
    Ok(ItemSet::from_ids(ids))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "car-analyze-test-{}-{:?}.txt",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut text = String::new();
        for u in 0..6 {
            for _ in 0..4 {
                if u % 2 == 0 {
                    text.push_str(&format!("{u} | 1 2\n"));
                } else {
                    text.push_str(&format!("{u} | 3\n"));
                }
            }
        }
        std::fs::write(&path, text).unwrap();
        path
    }

    fn run_analyze(extra: &[&str]) -> Result<String, CliError> {
        let path = fixture();
        let mut tokens: Vec<String> = vec![
            "--input".into(),
            path.to_string_lossy().into_owned(),
            "--min-support".into(),
            "0.5".into(),
            "--min-confidence".into(),
            "0.5".into(),
            "--l-min".into(),
            "2".into(),
            "--l-max".into(),
            "3".into(),
        ];
        tokens.extend(extra.iter().map(|s| s.to_string()));
        let args = Args::parse(&tokens)?;
        let mut out = Vec::new();
        let result = run(&args, &mut out);
        std::fs::remove_file(&path).ok();
        result?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn analyzes_cyclic_rule() {
        let text = run_analyze(&["--antecedent", "1", "--consequent", "2"]).unwrap();
        assert!(text.contains("holds:       101010"), "{text}");
        assert!(text.contains("(2,0)"), "{text}");
        assert!(text.contains("held in:     3/6"), "{text}");
    }

    #[test]
    fn per_unit_flag_prints_rows() {
        let text = run_analyze(&["--antecedent", "1", "--consequent", "2", "--per-unit"])
            .unwrap();
        assert!(text.contains("unit  holds"), "{text}");
        assert_eq!(
            text.lines()
                .filter(|l| l.contains("yes") || l.starts_with(char::is_numeric))
                .count(),
            6,
            "{text}"
        );
    }

    #[test]
    fn non_cyclic_rule_reports_none() {
        let text = run_analyze(&["--antecedent", "3", "--consequent", "1"]).unwrap();
        assert!(text.contains("none within bounds"), "{text}");
    }

    #[test]
    fn overlapping_sides_rejected() {
        assert!(matches!(
            run_analyze(&["--antecedent", "1", "--consequent", "1,2"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn multi_item_sides_parse() {
        let text = run_analyze(&["--antecedent", "1, 2", "--consequent", "3"]).unwrap();
        assert!(text.contains("{1 2} => {3}"), "{text}");
    }
}
