//! `car chaos` — run the deterministic fault-injecting TCP proxy.

use std::fs;
use std::io::Write;

use car_chaos::{run_proxy, ChaosConfig, ScheduleConfig};

use crate::args::Args;
use crate::error::CliError;

/// Runs the `chaos` command: boots the proxy between `--listen` and
/// `--upstream` with the seeded fault schedule and blocks until the
/// process is killed.
pub fn run<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let listen = args
        .get("listen")
        .ok_or_else(|| CliError::Usage("chaos requires --listen HOST:PORT".into()))?
        .to_string();
    let upstream = args
        .get("upstream")
        .ok_or_else(|| CliError::Usage("chaos requires --upstream HOST:PORT".into()))?
        .to_string();
    let seed: u64 = args.parse_or("seed", 42)?;

    let schedule = match args.get("schedule") {
        Some(path) => {
            let text = fs::read_to_string(path)?;
            ScheduleConfig::parse(&text)
                .map_err(|msg| CliError::Usage(format!("--schedule {path}: {msg}")))?
        }
        // No schedule: a transparent proxy (useful as the no-fault leg
        // of an A/B chaos run).
        None => ScheduleConfig::default(),
    };
    let partitions = schedule.partitions.len();

    let mut handle = run_proxy(ChaosConfig {
        listen,
        upstream: upstream.clone(),
        seed,
        schedule,
        arm_on_start: true,
    })?;

    writeln!(
        out,
        "car-chaos proxying {} -> {upstream} (seed {seed}, {partitions} partition window(s) armed)",
        handle.addr()
    )?;
    writeln!(out, "  same seed + schedule replays the same fault trace")?;
    out.flush()?;

    handle.wait();
    Ok(())
}
