//! `car audit` — run the project's static-analysis lints.
//!
//! A thin wrapper over [`car_audit::run_cli`]: the same engine ships as
//! the standalone `car-audit` binary (which CI runs), and as this
//! subcommand for interactive use. Arguments pass through verbatim —
//! see `car audit --help` for the flag list.

use std::io::Write;

use crate::error::CliError;

/// Runs the `audit` command. `argv` is everything after `audit`.
pub fn run<W: Write>(argv: &[String], out: &mut W) -> Result<(), CliError> {
    match car_audit::run_cli(argv, out) {
        0 => Ok(()),
        1 => Err(CliError::Audit("findings reported (see above)".to_string())),
        _ => Err(CliError::Audit("usage or I/O error".to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_passes_through() {
        let mut out = Vec::new();
        run(&["--help".to_string()], &mut out).expect("help is ok");
        assert!(String::from_utf8_lossy(&out).contains("car-audit"));
    }

    #[test]
    fn bad_flag_is_an_audit_error() {
        let mut out = Vec::new();
        let err = run(&["--bogus".to_string()], &mut out).expect_err("must fail");
        assert!(matches!(err, CliError::Audit(_)));
    }
}
