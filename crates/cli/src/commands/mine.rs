//! `car mine` — cyclic association rule mining.

use std::io::Write;

use car_core::approx::mine_approx;
use car_core::{Algorithm, CyclicRuleMiner, InterleavedOptions, MiningConfig};

use crate::args::Args;
use crate::commands::load_db;
use crate::error::CliError;

/// Runs the `mine` command.
pub fn run<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let input = args.require("input")?;
    let db = load_db(input)?;

    let min_support: f64 = args.parse_or("min-support", 0.05)?;
    let min_confidence: f64 = args.parse_or("min-confidence", 0.6)?;
    let l_min: u32 = args.parse_or("l-min", 2)?;
    let l_max: u32 = args.parse_or("l-max", 16)?;
    let mut builder = MiningConfig::builder()
        .min_support_fraction(min_support)
        .min_confidence(min_confidence)
        .cycle_bounds(l_min, l_max);
    if let Some(cap) = args.get("max-itemset-size") {
        let cap: usize = cap.parse().map_err(|_| {
            CliError::Usage(format!("invalid --max-itemset-size `{cap}`"))
        })?;
        builder = builder.max_itemset_size(cap);
    }
    let config = builder.build()?;

    // Approximate mining takes a separate path.
    if let Some(m) = args.get("max-misses") {
        let max_misses: u32 = m
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid --max-misses `{m}`")))?;
        let outcome = mine_approx(&db, &config, max_misses)?;
        writeln!(out, "# {} approximate cyclic rules", outcome.rules.len())?;
        for r in &outcome.rules {
            write!(out, "{} @", r.rule)?;
            for c in &r.cycles {
                write!(out, " {}[{}/{} miss]", c.cycle, c.misses, c.occurrences)?;
            }
            writeln!(out)?;
        }
        return Ok(());
    }

    let algorithm = match args.get("algorithm").unwrap_or("interleaved") {
        "sequential" => Algorithm::Sequential,
        "interleaved" => {
            let mut opts = InterleavedOptions::all();
            if args.flag("no-pruning") {
                opts = opts.without_pruning();
            }
            if args.flag("no-skipping") {
                opts = opts.without_skipping();
            }
            if args.flag("no-elimination") {
                opts = opts.without_elimination();
            }
            Algorithm::Interleaved(opts)
        }
        "parallel" => {
            let threads: usize = args.parse_or("threads", 0)?;
            let outcome =
                car_core::parallel::mine_sequential_parallel(&db, &config, threads)?;
            print_outcome(out, &outcome, stats_mode(args)?)?;
            return Ok(());
        }
        other => {
            return Err(CliError::Usage(format!(
            "unknown algorithm `{other}` (expected interleaved, sequential, or parallel)"
        )))
        }
    };

    let outcome = CyclicRuleMiner::new(config, algorithm).mine(&db)?;
    if args.flag("report") {
        let top: usize = args.parse_or("top", 10)?;
        let report = car_core::MiningReport::new(&outcome, db.num_units(), top);
        write!(out, "{}", report.render())?;
        return Ok(());
    }
    print_outcome(out, &outcome, stats_mode(args)?)
}

/// How (and whether) to report the per-run [`car_core::MiningStats`].
#[derive(Clone, Copy, PartialEq)]
enum StatsMode {
    Off,
    Human,
    Json,
}

fn stats_mode(args: &Args) -> Result<StatsMode, CliError> {
    if !args.flag("stats") {
        return Ok(StatsMode::Off);
    }
    match args.get("stats-format").unwrap_or("human") {
        "human" => Ok(StatsMode::Human),
        "json" => Ok(StatsMode::Json),
        other => Err(CliError::Usage(format!(
            "unknown stats format `{other}` (expected human or json)"
        ))),
    }
}

fn print_outcome<W: Write>(
    out: &mut W,
    outcome: &car_core::MiningOutcome,
    stats: StatsMode,
) -> Result<(), CliError> {
    writeln!(out, "# {} cyclic association rules", outcome.rules.len())?;
    for r in &outcome.rules {
        writeln!(out, "{r}")?;
    }
    let s = &outcome.stats;
    match stats {
        StatsMode::Off => {}
        StatsMode::Human => {
            writeln!(out, "# stats:")?;
            writeln!(out, "#   units                 {}", s.num_units)?;
            writeln!(out, "#   transactions          {}", s.num_transactions)?;
            writeln!(out, "#   support computations  {}", s.support_computations)?;
            writeln!(out, "#   skipped counts        {}", s.skipped_counts)?;
            writeln!(out, "#   candidates generated  {}", s.candidates_generated)?;
            writeln!(out, "#   pruned by cycles      {}", s.candidates_pruned_by_cycles)?;
            writeln!(out, "#   cycles eliminated     {}", s.cycles_eliminated)?;
            writeln!(out, "#   cyclic itemsets       {}", s.cyclic_itemsets)?;
            writeln!(out, "#   rules checked         {}", s.rules_checked)?;
            writeln!(out, "#   phase1                {:?}", s.phase1)?;
            writeln!(out, "#   phase2                {:?}", s.phase2)?;
        }
        StatsMode::Json => {
            // One machine-readable line, mirroring the names the daemon
            // exports as `car_mine_*` Prometheus counters.
            writeln!(
                out,
                concat!(
                    "{{\"rules\":{},\"units\":{},\"transactions\":{},",
                    "\"support_computations\":{},\"skipped_counts\":{},",
                    "\"candidates_generated\":{},\"candidates_pruned_by_cycles\":{},",
                    "\"cycles_eliminated\":{},\"cyclic_itemsets\":{},",
                    "\"rules_checked\":{},\"phase1_us\":{},\"phase2_us\":{}}}"
                ),
                outcome.rules.len(),
                s.num_units,
                s.num_transactions,
                s.support_computations,
                s.skipped_counts,
                s.candidates_generated,
                s.candidates_pruned_by_cycles,
                s.cycles_eliminated,
                s.cyclic_itemsets,
                s.rules_checked,
                s.phase1.as_micros(),
                s.phase2.as_micros(),
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_fixture() -> tempfile::TempPath {
        let mut f = tempfile::NamedTempFile::new().expect("temp file");
        // {1,2} in even units, {3} in odd units, 4 tx each, 6 units.
        for u in 0..6 {
            for _ in 0..4 {
                if u % 2 == 0 {
                    writeln!(f, "{u} | 1 2").unwrap();
                } else {
                    writeln!(f, "{u} | 3").unwrap();
                }
            }
        }
        f.into_temp_path()
    }

    mod tempfile {
        //! Minimal stand-in for the `tempfile` crate (not in the approved
        //! dependency set): unique paths under the system temp dir,
        //! removed on drop.
        use std::fs::File;
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        static COUNTER: AtomicU64 = AtomicU64::new(0);

        pub struct NamedTempFile {
            file: File,
            path: PathBuf,
        }

        pub struct TempPath(PathBuf);

        impl NamedTempFile {
            pub fn new() -> std::io::Result<Self> {
                let id = COUNTER.fetch_add(1, Ordering::Relaxed);
                let path = std::env::temp_dir()
                    .join(format!("car-cli-test-{}-{id}.txt", std::process::id()));
                Ok(NamedTempFile { file: File::create(&path)?, path })
            }

            pub fn into_temp_path(self) -> TempPath {
                TempPath(self.path)
            }
        }

        impl std::io::Write for NamedTempFile {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.file.write(buf)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.file.flush()
            }
        }

        impl std::ops::Deref for TempPath {
            type Target = std::path::Path;
            fn deref(&self) -> &std::path::Path {
                &self.0
            }
        }

        impl Drop for TempPath {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }
    }

    fn run_mine(extra: &[&str]) -> Result<String, CliError> {
        let path = write_fixture();
        let mut tokens: Vec<String> = vec![
            "--input".into(),
            path.to_string_lossy().into_owned(),
            "--min-support".into(),
            "0.5".into(),
            "--min-confidence".into(),
            "0.5".into(),
            "--l-min".into(),
            "2".into(),
            "--l-max".into(),
            "3".into(),
        ];
        tokens.extend(extra.iter().map(|s| s.to_string()));
        let args = Args::parse(&tokens)?;
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8"))
    }

    #[test]
    fn mines_interleaved_by_default() {
        let text = run_mine(&[]).unwrap();
        assert!(text.contains("{1} => {2} @ (2,0)"), "{text}");
        assert!(text.contains("{2} => {1} @ (2,0)"), "{text}");
    }

    #[test]
    fn sequential_and_interleaved_print_identically() {
        let a = run_mine(&["--algorithm", "sequential"]).unwrap();
        let b = run_mine(&["--algorithm", "interleaved"]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_works() {
        let text = run_mine(&["--algorithm", "parallel", "--threads", "2"]).unwrap();
        assert!(text.contains("{1} => {2} @ (2,0)"), "{text}");
    }

    #[test]
    fn stats_flag_prints_counters() {
        let text = run_mine(&["--stats"]).unwrap();
        assert!(text.contains("support computations"), "{text}");
    }

    #[test]
    fn stats_json_emits_machine_readable_line() {
        let text = run_mine(&["--stats", "--stats-format", "json"]).unwrap();
        let json_line =
            text.lines().find(|l| l.starts_with("{\"")).expect("a JSON stats line");
        assert!(json_line.contains("\"support_computations\":"), "{json_line}");
        assert!(json_line.contains("\"skipped_counts\":"), "{json_line}");
        assert!(json_line.contains("\"candidates_pruned_by_cycles\":"), "{json_line}");
        assert!(json_line.contains("\"cycles_eliminated\":"), "{json_line}");
        assert!(json_line.ends_with('}'), "{json_line}");
    }

    #[test]
    fn unknown_stats_format_rejected() {
        assert!(matches!(
            run_mine(&["--stats", "--stats-format", "xml"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn ablation_flags_change_work_not_results() {
        let full = run_mine(&[]).unwrap();
        let none =
            run_mine(&["--no-pruning", "--no-skipping", "--no-elimination"]).unwrap();
        assert_eq!(full, none);
    }

    #[test]
    fn report_flag_renders_summary() {
        let text = run_mine(&["--report", "--top", "5"]).unwrap();
        assert!(text.contains("cyclic rules over 6 units"), "{text}");
        assert!(text.contains("top rules by coverage"), "{text}");
        assert!(text.contains("50.0%"), "{text}");
    }

    #[test]
    fn approx_path_reports_misses() {
        let text = run_mine(&["--max-misses", "1"]).unwrap();
        assert!(text.contains("approximate cyclic rules"), "{text}");
        assert!(text.contains("miss]"), "{text}");
    }

    #[test]
    fn unknown_algorithm_rejected() {
        assert!(matches!(run_mine(&["--algorithm", "quantum"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn missing_input_rejected() {
        let args = Args::parse(&[]).unwrap();
        let mut out = Vec::new();
        assert!(matches!(run(&args, &mut out), Err(CliError::Usage(_))));
    }
}
