//! `car detect` — cycle detection on raw 0/1 sequences.

use std::io::Write;

use car_cycles::{
    autocorrelation, detect_approx_cycles, detect_cycles, dominant_period,
    minimal_cycles, spectrum, BitSeq, CycleBounds,
};

use crate::args::Args;
use crate::error::CliError;

/// Runs the `detect` command.
pub fn run<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let sequence = args.require("sequence")?;
    let seq: BitSeq = sequence
        .parse()
        .map_err(|e| CliError::Usage(format!("invalid --sequence: {e}")))?;
    if seq.is_empty() {
        return Err(CliError::Usage("--sequence must be non-empty".into()));
    }
    let l_min: u32 = args.parse_or("l-min", 1)?;
    let l_max: u32 = args.parse_or("l-max", (seq.len() as u32).min(16))?;
    let bounds = CycleBounds::new(l_min, l_max).ok_or_else(|| {
        CliError::Usage(format!("invalid cycle bounds [{l_min},{l_max}]"))
    })?;
    if l_max as usize > seq.len() {
        return Err(CliError::Usage(format!(
            "--l-max {l_max} exceeds sequence length {}",
            seq.len()
        )));
    }

    if args.flag("spectrum") {
        writeln!(out, "# periodicity spectrum (best offset per length)")?;
        writeln!(out, "length  offset  hit-rate  occurrences")?;
        for p in spectrum(&seq, bounds) {
            writeln!(
                out,
                "{:<8}{:<8}{:<10.3}{}",
                p.length, p.best_offset, p.hit_rate, p.occurrences
            )?;
        }
        let max_lag = l_max as usize;
        if let Some(period) = dominant_period(&seq, max_lag) {
            writeln!(out, "# autocorrelation (lags 1..={max_lag})")?;
            for (i, v) in autocorrelation(&seq, max_lag).iter().enumerate() {
                writeln!(out, "lag {:<4} {:.3}", i + 1, v)?;
            }
            writeln!(out, "dominant period: {period}")?;
        }
        return Ok(());
    }

    if let Some(m) = args.get("max-misses") {
        let max_misses: u32 = m
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid --max-misses `{m}`")))?;
        let cycles = detect_approx_cycles(&seq, bounds, max_misses);
        writeln!(out, "# {} approximate cycles (<= {max_misses} misses)", cycles.len())?;
        for c in cycles {
            writeln!(
                out,
                "{} misses {}/{} hit-rate {:.3}",
                c.cycle,
                c.misses,
                c.occurrences,
                c.hit_rate()
            )?;
        }
        return Ok(());
    }

    let set = detect_cycles(&seq, bounds);
    let minimal = minimal_cycles(&set);
    writeln!(out, "# {} cycles ({} minimal)", set.len(), minimal.len())?;
    for c in minimal {
        writeln!(out, "{c}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_detect(tokens: &[&str]) -> Result<String, CliError> {
        let args =
            Args::parse(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>())?;
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8"))
    }

    #[test]
    fn detects_alternating_cycle() {
        let text = run_detect(&["--sequence", "010101", "--l-min", "2", "--l-max", "3"])
            .unwrap();
        assert!(text.contains("(2,1)"), "{text}");
        assert!(text.contains("1 minimal"), "{text}");
    }

    #[test]
    fn approx_mode_reports_hit_rates() {
        let text = run_detect(&[
            "--sequence",
            "0101010001",
            "--l-min",
            "2",
            "--l-max",
            "2",
            "--max-misses",
            "1",
        ])
        .unwrap();
        assert!(text.contains("approximate cycles"), "{text}");
        assert!(text.contains("hit-rate"), "{text}");
    }

    #[test]
    fn spectrum_flag_shows_periodicities() {
        let text = run_detect(&[
            "--sequence",
            "1001001001001",
            "--l-min",
            "2",
            "--l-max",
            "4",
            "--spectrum",
        ])
        .unwrap();
        assert!(text.contains("periodicity spectrum"), "{text}");
        assert!(text.contains("dominant period: 3"), "{text}");
    }

    #[test]
    fn rejects_garbage_sequence() {
        assert!(matches!(run_detect(&["--sequence", "01x"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn rejects_window_overflow() {
        assert!(matches!(
            run_detect(&["--sequence", "0101", "--l-max", "9"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn default_bounds_fit_sequence() {
        let text = run_detect(&["--sequence", "111"]).unwrap();
        assert!(text.contains("(1,0)"), "{text}");
    }
}
