//! `car stats` — describe a timed transaction file.

use std::io::Write;

use crate::args::Args;
use crate::commands::load_db;
use crate::error::CliError;

/// Runs the `stats` command.
pub fn run<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let input = args.require("input")?;
    let db = load_db(input)?;

    let n = db.num_units();
    let total = db.num_transactions();
    let mut sizes: Vec<usize> = Vec::with_capacity(n);
    let mut item_total = 0usize;
    for (_, unit) in db.iter_units() {
        sizes.push(unit.len());
        item_total += unit.iter().map(|t| t.len()).sum::<usize>();
    }
    let distinct_items = {
        let mut ids: Vec<u32> =
            db.iter_all().flat_map(|(_, t)| t.iter().map(|i| i.id())).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    };

    writeln!(out, "units:               {n}")?;
    writeln!(out, "transactions:        {total}")?;
    writeln!(out, "distinct items:      {distinct_items}")?;
    if total > 0 {
        writeln!(out, "avg transaction len: {:.2}", item_total as f64 / total as f64)?;
    }
    if !sizes.is_empty() {
        writeln!(
            out,
            "unit sizes:          min {} / avg {:.1} / max {}",
            sizes.iter().min().expect("non-empty"),
            total as f64 / n as f64,
            sizes.iter().max().expect("non-empty"),
        )?;
        let empty = sizes.iter().filter(|&&s| s == 0).count();
        if empty > 0 {
            writeln!(out, "empty units:         {empty}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_counts() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("car-stats-test-{}.txt", std::process::id()));
        std::fs::write(&path, "0 | 1 2\n0 | 2\n2 | 3 4 5\n").unwrap();
        let tokens = vec!["--input".to_string(), path.to_string_lossy().into_owned()];
        let args = Args::parse(&tokens).unwrap();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.contains("units:               3"), "{text}");
        assert!(text.contains("transactions:        3"), "{text}");
        assert!(text.contains("distinct items:      5"), "{text}");
        assert!(text.contains("empty units:         1"), "{text}");
    }

    #[test]
    fn missing_file_is_io_error() {
        let tokens = vec!["--input".to_string(), "/nonexistent/car".to_string()];
        let args = Args::parse(&tokens).unwrap();
        let mut out = Vec::new();
        assert!(matches!(run(&args, &mut out), Err(CliError::Io(_))));
    }
}
