//! `car gen` — synthetic data generation.

use std::fs::File;
use std::io::Write;

use car_datagen::{generate_cyclic, CyclicConfig, QuestConfig};
use car_itemset::io as car_io;

use crate::args::Args;
use crate::error::CliError;

/// Runs the `gen` command.
pub fn run<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let units: usize = args.parse_or("units", 32)?;
    let tx_per_unit: usize = args.parse_or("tx-per-unit", 500)?;
    let items: u32 = args.parse_or("items", 500)?;
    let patterns: usize = args.parse_or("patterns", 50)?;
    let cyclic: usize = args.parse_or("cyclic", 10)?;
    let cycle_min: u32 = args.parse_or("cycle-min", 2)?;
    let cycle_max: u32 = args.parse_or("cycle-max", 8)?;
    let avg_len: f64 = args.parse_or("avg-tx-len", 5.0)?;
    let boost: f64 = args.parse_or("boost", 0.8)?;
    let seed: u64 = args.parse_or("seed", 0)?;

    if units == 0 || tx_per_unit == 0 {
        return Err(CliError::Usage("--units and --tx-per-unit must be positive".into()));
    }
    if cycle_min < 1 || cycle_min > cycle_max || cycle_max as usize > units {
        return Err(CliError::Usage(format!(
            "cycle range [{cycle_min},{cycle_max}] must satisfy \
             1 <= min <= max <= units ({units})"
        )));
    }

    let config = CyclicConfig {
        quest: QuestConfig::default()
            .with_num_items(items)
            .with_num_patterns(patterns)
            .with_avg_transaction_len(avg_len),
        num_units: units,
        transactions_per_unit: tx_per_unit,
        num_cyclic_patterns: cyclic,
        cyclic_pattern_len: args.parse_or("cyclic-len", 2)?,
        cycle_length_range: (cycle_min, cycle_max),
        boost,
        max_planted_per_transaction: 2,
    };
    let data = generate_cyclic(&config, seed);

    match args.get("out") {
        Some(path) => {
            car_io::write_timed(File::create(path)?, &data.db)?;
            writeln!(
                out,
                "wrote {} transactions in {} units to {path}",
                data.db.num_transactions(),
                data.db.num_units()
            )?;
        }
        None => {
            car_io::write_timed(&mut *out, &data.db)?;
        }
    }

    if args.flag("show-planted") {
        for p in &data.planted {
            writeln!(
                out,
                "# planted {} cycle ({},{}) boost {:.2}",
                p.items, p.length, p.offset, p.boost
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_gen(tokens: &[&str]) -> Result<String, CliError> {
        let args =
            Args::parse(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>())?;
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn generates_to_stdout() {
        let text = run_gen(&[
            "--units",
            "4",
            "--tx-per-unit",
            "5",
            "--items",
            "20",
            "--cycle-max",
            "3",
            "--seed",
            "1",
        ])
        .unwrap();
        let db = car_io::read_timed(text.as_bytes()).unwrap();
        assert_eq!(db.num_units(), 4);
        assert_eq!(db.num_transactions(), 20);
    }

    #[test]
    fn show_planted_appends_comments() {
        let text = run_gen(&[
            "--units",
            "4",
            "--tx-per-unit",
            "5",
            "--items",
            "20",
            "--cyclic",
            "2",
            "--cycle-max",
            "3",
            "--show-planted",
        ])
        .unwrap();
        assert_eq!(text.lines().filter(|l| l.starts_with("# planted")).count(), 2);
        // Comments must not break re-reading.
        let db = car_io::read_timed(text.as_bytes()).unwrap();
        assert_eq!(db.num_transactions(), 20);
    }

    #[test]
    fn rejects_zero_units() {
        assert!(matches!(
            run_gen(&["--units", "0", "--tx-per-unit", "5"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn rejects_cycle_longer_than_window() {
        assert!(matches!(
            run_gen(&["--units", "4", "--tx-per-unit", "5", "--cycle-max", "9"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let args = [
            "--units",
            "3",
            "--tx-per-unit",
            "4",
            "--cycle-max",
            "3",
            "--items",
            "15",
            "--seed",
            "9",
        ];
        assert_eq!(run_gen(&args).unwrap(), run_gen(&args).unwrap());
    }
}
