//! `car shard` — run the sharded-cluster router.
//!
//! Two modes:
//!
//! * **Attach** (`--workers a:p,b:p,...`): front an already-running set
//!   of `car-serve` workers. The worker list order defines shard ids.
//! * **Spawn** (`--shards N`): launch N `car serve` child processes
//!   (ephemeral ports, `--shard-id i --shard-count N`), parse their
//!   startup banners for addresses, and shut them down when the router
//!   stops.
//!
//! Workers of a sharded cluster must mine with an absolute support
//! count (`--min-support-count`): each shard sees only its partition's
//! transactions, so a support *fraction* would be taken of per-shard
//! volume and shards would disagree with a single node. Spawn mode
//! enforces this; attach mode trusts the operator.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use car_serve::RetryPolicy;
use car_shard::{run_router, BreakerConfig, PartitionKey, RouterConfig, RouterError};

use crate::args::Args;
use crate::error::CliError;

/// A spawned worker process, killed on drop unless it already exited.
struct WorkerChild {
    child: Child,
    addr: String,
}

impl Drop for WorkerChild {
    fn drop(&mut self) {
        // Give a shut-down worker a moment to exit cleanly, then stop
        // waiting politely.
        for _ in 0..100 {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(_) => break,
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns one `car serve` worker and reads its banner for the address.
fn spawn_worker(
    shard_id: u32,
    shard_count: u32,
    forwarded: &[String],
) -> Result<WorkerChild, CliError> {
    let exe = std::env::current_exe()?;
    let mut cmd = Command::new(exe);
    cmd.arg("serve")
        .arg("--port")
        .arg("0")
        .arg("--shard-id")
        .arg(shard_id.to_string())
        .arg("--shard-count")
        .arg(shard_count.to_string())
        .args(forwarded)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    let mut child = cmd.spawn()?;
    let Some(stdout) = child.stdout.take() else {
        let _ = child.kill();
        let _ = child.wait();
        return Err(CliError::Usage(format!(
            "worker {shard_id}: could not capture stdout"
        )));
    };
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(CliError::Usage(format!(
                    "worker {shard_id} exited before announcing its address"
                )));
            }
            Ok(_) => {
                if let Some(rest) =
                    line.trim().strip_prefix("car-serve listening on http://")
                {
                    let addr = rest.to_string();
                    // Keep draining the worker's stdout so it never
                    // blocks on a full pipe.
                    std::thread::spawn(move || {
                        let mut sink = String::new();
                        loop {
                            sink.clear();
                            match reader.read_line(&mut sink) {
                                Ok(0) | Err(_) => break,
                                Ok(_) => {}
                            }
                        }
                    });
                    return Ok(WorkerChild { child, addr });
                }
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(CliError::Io(e));
            }
        }
    }
}

/// Builds the `car serve` options forwarded to every spawned worker.
fn forwarded_worker_args(args: &Args) -> Vec<String> {
    let mut forwarded = Vec::new();
    let mut push = |name: &str, value: &str| {
        forwarded.push(format!("--{name}"));
        forwarded.push(value.to_string());
    };
    // Mining parameters: support is forced to an absolute count.
    let count = args.get("min-support-count").unwrap_or("2");
    push("min-support-count", count);
    for name in ["min-confidence", "l-min", "l-max", "window", "queue-capacity", "fsync"]
    {
        if let Some(value) = args.get(name) {
            push(name, value);
        }
    }
    forwarded
}

/// Runs the `shard` command: boots (or attaches to) the workers, starts
/// the router, and blocks until it shuts down (`POST /v1/shutdown`).
pub fn run<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let host = args.get("host").unwrap_or("127.0.0.1");
    let port: u16 = args.parse_or("port", 7979)?;
    let threads: usize = args.parse_or("threads", 4)?;
    let key: PartitionKey = match args.get("partition-key") {
        None => PartitionKey::MinItem,
        Some(raw) => raw
            .parse()
            .map_err(|msg| CliError::Usage(format!("--partition-key: {msg}")))?,
    };
    let probe_interval_ms: u64 = args.parse_or("probe-interval-ms", 250)?;
    let replay_capacity: usize = args.parse_or("replay-capacity", 512)?;
    let max_retries: u32 = args.parse_or("retry", 2)?;
    let timeout_secs: u64 = args.parse_or("timeout-secs", 2)?;
    // Resilience knobs: breaker trip threshold/cooldown and the default
    // per-request deadline budget propagated to fan-out legs.
    let breaker_defaults = BreakerConfig::default();
    let breaker_failures: u32 =
        args.parse_or("breaker-failures", breaker_defaults.failure_threshold)?;
    let breaker_cooldown_ms: u64 = args.parse_or(
        "breaker-cooldown-ms",
        u64::try_from(breaker_defaults.cooldown.as_millis()).unwrap_or(500),
    )?;
    let request_budget_ms: u64 = args.parse_or("request-budget-ms", 10_000)?;

    // Attach mode takes precedence; spawn mode launches its own workers.
    let mut children: Vec<WorkerChild> = Vec::new();
    let (workers, shutdown_workers) = match args.get("workers") {
        Some(list) => {
            let workers: Vec<String> = list
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
            if workers.is_empty() {
                return Err(CliError::Usage("--workers lists no addresses".into()));
            }
            (workers, false)
        }
        None => {
            let shards: u32 = args.parse_or("shards", 0)?;
            if shards == 0 {
                return Err(CliError::Usage(
                    "need --workers a:p,b:p,... (attach) or --shards N (spawn)".into(),
                ));
            }
            let forwarded = forwarded_worker_args(args);
            for shard_id in 0..shards {
                let child = spawn_worker(shard_id, shards, &forwarded)?;
                writeln!(out, "  shard {shard_id} worker on http://{}", child.addr)?;
                children.push(child);
            }
            (children.iter().map(|c| c.addr.clone()).collect(), true)
        }
    };

    let config = RouterConfig {
        addr: format!("{host}:{port}"),
        workers,
        threads,
        key,
        retry: RetryPolicy {
            max_retries,
            timeout: Duration::from_secs(timeout_secs.max(1)),
        },
        probe_interval: Duration::from_millis(probe_interval_ms.max(25)),
        replay_capacity: replay_capacity.max(1),
        shutdown_workers,
        breaker: BreakerConfig {
            failure_threshold: breaker_failures.max(1),
            cooldown: Duration::from_millis(breaker_cooldown_ms.max(1)),
            ..breaker_defaults
        },
        request_budget: Duration::from_millis(request_budget_ms.max(1)),
        ..RouterConfig::default()
    };
    let shard_count = config.workers.len();

    let handle = run_router(config).map_err(|e| match e {
        RouterError::Config(msg) => CliError::Usage(msg),
        RouterError::Io(io) => CliError::Io(io),
    })?;
    writeln!(out, "car-shard router listening on http://{}", handle.addr)?;
    writeln!(
        out,
        "  {shard_count} shards, partition key {key}, replay ring {replay_capacity} units"
    )?;
    writeln!(
        out,
        "  endpoints: POST /v1/units  GET /v1/rules  GET /v1/health  GET /metrics"
    )?;
    writeln!(out, "  stop with POST /v1/shutdown")?;
    out.flush()?;

    let stats = handle.wait();
    drop(children);
    writeln!(out, "car-shard router stopped")?;
    writeln!(
        out,
        "  served {} requests in {:.1}s; routed {} units",
        stats.requests,
        stats.uptime.as_secs_f64(),
        stats.units_routed
    )?;
    Ok(())
}
