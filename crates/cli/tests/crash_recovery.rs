//! Crash recovery against the real `car` binary: SIGKILL the daemon
//! mid-ingest and verify the restarted daemon serves exactly the rules
//! that batch-mining the acknowledged units produces.
//!
//! This is the acceptance test for the durability contract: with
//! `--fsync always` (the default), a unit is acknowledged only after it
//! is fsynced into the WAL, so no crash — not even `kill -9` with no
//! chance to flush — may lose an acknowledged unit.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use car_core::sequential::mine_sequential;
use car_core::{CyclicRule, MiningConfig};
use car_datagen::{generate_cyclic, CyclicConfig};
use car_itemset::{ItemSet, SegmentedDb};
use car_serve::json::Json;
use car_serve::Client;

const WINDOW: usize = 8;

/// Kills the child on drop so a failing assertion never leaks a daemon.
struct Daemon {
    child: Child,
    addr: String,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `car serve` on an ephemeral port and waits for its banner.
fn spawn_daemon(data_dir: &std::path::Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_car"))
        .args([
            "serve",
            "--port",
            "0",
            "--window",
            "8",
            "--min-support",
            "0.2",
            "--min-confidence",
            "0.6",
            "--l-min",
            "2",
            "--l-max",
            "4",
            "--data-dir",
        ])
        .arg(data_dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("car binary spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("daemon exited before announcing its address")
            .expect("readable stdout");
        if let Some(rest) = line.strip_prefix("car-serve listening on http://") {
            break rest.trim().to_string();
        }
    };
    // Drain the rest of the banner in the background so the daemon
    // never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    Daemon { child, addr }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "car-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn mining_config() -> MiningConfig {
    MiningConfig::builder()
        .min_support_fraction(0.2)
        .min_confidence(0.6)
        .cycle_bounds(2, 4)
        .build()
        .unwrap()
}

fn unit_body(unit: &[ItemSet]) -> Vec<u8> {
    let transactions = Json::Array(
        unit.iter()
            .map(|tx| Json::Array(tx.iter().map(|item| Json::from(item.id())).collect()))
            .collect(),
    );
    Json::Object(vec![("transactions".to_string(), transactions)]).render().into_bytes()
}

fn wait_ready(client: &mut Client) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = client.request("GET", "/v1/health", None).expect("health");
        let doc = Json::parse(&resp.body_text()).unwrap();
        if doc.get("ready").and_then(Json::as_bool) == Some(true) {
            return;
        }
        assert!(Instant::now() < deadline, "daemon never became ready");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn canonical(rules: &[CyclicRule]) -> BTreeSet<(String, Vec<(u64, u64)>)> {
    rules
        .iter()
        .map(|r| {
            (
                r.rule.to_string(),
                r.cycles
                    .iter()
                    .map(|c| (u64::from(c.length()), u64::from(c.offset())))
                    .collect(),
            )
        })
        .collect()
}

fn served(doc: &Json) -> BTreeSet<(String, Vec<(u64, u64)>)> {
    doc.get("rules")
        .and_then(Json::as_array)
        .expect("rules array")
        .iter()
        .map(|r| {
            let name = r.get("rule").and_then(Json::as_str).unwrap().to_string();
            let cycles = r
                .get("cycles")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .map(|c| {
                    (
                        c.get("length").and_then(Json::as_u64).unwrap(),
                        c.get("offset").and_then(Json::as_u64).unwrap(),
                    )
                })
                .collect();
            (name, cycles)
        })
        .collect()
}

#[test]
fn sigkill_mid_ingest_loses_no_acknowledged_unit() {
    let dir = temp_dir("sigkill");
    let data = generate_cyclic(
        &CyclicConfig::default()
            .with_units(13)
            .with_transactions_per_unit(60)
            .with_num_cyclic_patterns(4)
            .with_cycle_length_range(2, 4),
        42,
    );

    let mut acknowledged = 0usize;
    {
        let mut daemon = spawn_daemon(&dir);
        let mut client = Client::connect(&daemon.addr).unwrap();
        wait_ready(&mut client);
        // 12 units acknowledged and applied…
        for i in 0..12 {
            let resp = client
                .request("POST", "/v1/units?wait=true", Some(&unit_body(data.db.unit(i))))
                .expect("ingest");
            assert_eq!(resp.status, 200, "unit {i}: {}", resp.body_text());
            acknowledged += 1;
        }
        // …one more acknowledged but possibly still in the apply queue…
        let resp = client
            .request("POST", "/v1/units", Some(&unit_body(data.db.unit(12))))
            .expect("ingest");
        assert_eq!(resp.status, 202, "{}", resp.body_text());
        acknowledged += 1;
        // …and the daemon dies with no chance to flush or snapshot.
        daemon.child.kill().expect("SIGKILL");
        daemon.child.wait().expect("reaped");
    }

    // Restart on the same data directory: every acknowledged unit is
    // back, including the one that never reached the miner.
    let daemon = spawn_daemon(&dir);
    let mut client = Client::connect(&daemon.addr).unwrap();
    wait_ready(&mut client);

    let resp = client.request("GET", "/v1/health", None).unwrap();
    let health = Json::parse(&resp.body_text()).unwrap();
    assert_eq!(
        health.get("units_retained").and_then(Json::as_u64),
        Some(WINDOW as u64),
        "{health:?}"
    );
    let recovery = health.get("recovery").expect("recovery block");
    assert_eq!(recovery.get("truncated_records").and_then(Json::as_u64), Some(0));
    // The kill outran any snapshot: the window came back from the WAL.
    assert_eq!(
        recovery.get("replayed_units").and_then(Json::as_u64),
        Some(acknowledged as u64)
    );

    let resp = client.request("GET", "/v1/rules", None).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let got = served(&Json::parse(&resp.body_text()).unwrap());

    let retained: Vec<Vec<ItemSet>> =
        (acknowledged - WINDOW..acknowledged).map(|i| data.db.unit(i).to_vec()).collect();
    let window_db = SegmentedDb::from_unit_itemsets(retained);
    let expected = mine_sequential(&window_db, &mining_config()).unwrap().rules;
    assert!(!expected.is_empty(), "test data should produce cyclic rules");
    assert_eq!(
        got,
        canonical(&expected),
        "recovered rules must equal batch mining the acknowledged window"
    );

    // Graceful exit this time: the daemon drains and the process ends 0.
    let resp = client.request("POST", "/v1/shutdown", None).unwrap();
    assert_eq!(resp.status, 200);
    drop(client);
    let mut daemon = daemon;
    let status = daemon.child.wait().expect("reaped");
    assert!(status.success(), "graceful shutdown exits cleanly: {status:?}");

    std::fs::remove_dir_all(&dir).unwrap();
}
