//! Sharded-cluster acceptance test against the real `car` binary: a
//! 3-shard cluster with durable workers, a SIGKILL of one worker
//! mid-ingest, degraded serving from the survivors, and full recovery —
//! WAL replay on the worker plus catch-up replay and re-admission at
//! the router.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use car_core::window::SlidingWindowMiner;
use car_core::{CyclicRule, MiningConfig};
use car_itemset::ItemSet;
use car_serve::json::Json;
use car_serve::Client;
use car_shard::{PartitionKey, ShardRing};

const SHARDS: u32 = 3;
const WINDOW: usize = 16;

/// Kills the child on drop so a failing assertion never leaks a daemon.
struct Daemon {
    child: Child,
    addr: String,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns a `car` subcommand and waits for `banner` on stdout.
fn spawn_banner(args: &[&str], banner: &str) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_car"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("car binary spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .unwrap_or_else(|| panic!("process exited before `{banner}`"))
            .expect("readable stdout");
        if let Some(rest) = line.strip_prefix(banner) {
            break rest.trim().to_string();
        }
    };
    // Drain the rest of the output in the background so the process
    // never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    Daemon { child, addr }
}

fn spawn_worker(shard_id: u32, port: u16, data_dir: &std::path::Path) -> Daemon {
    let port = port.to_string();
    let id = shard_id.to_string();
    let count = SHARDS.to_string();
    let dir = data_dir.to_str().expect("utf-8 temp path");
    spawn_banner(
        &[
            "serve",
            "--port",
            &port,
            "--shard-id",
            &id,
            "--shard-count",
            &count,
            "--window",
            "16",
            "--min-support-count",
            "2",
            "--min-confidence",
            "0.5",
            "--l-min",
            "2",
            "--l-max",
            "4",
            "--data-dir",
            dir,
        ],
        "car-serve listening on http://",
    )
}

fn spawn_router(worker_addrs: &[String]) -> Daemon {
    let list = worker_addrs.join(",");
    spawn_banner(
        &["shard", "--port", "0", "--workers", &list, "--probe-interval-ms", "100"],
        "car-shard router listening on http://",
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "car-shard-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn mining_config() -> MiningConfig {
    MiningConfig::builder()
        .min_support_count(2)
        .min_confidence(0.5)
        .cycle_bounds(2, 4)
        .build()
        .unwrap()
}

/// Partition-pure units with one planted alternating rule per shard
/// (same construction as the in-process cluster tests).
fn pure_units(n: usize) -> Vec<Vec<ItemSet>> {
    let ring = ShardRing::new(SHARDS).unwrap();
    let mut pools: Vec<Vec<u32>> = vec![Vec::new(); SHARDS as usize];
    for item in 0..64u32 {
        pools[ring.owner_of_key(u64::from(item)) as usize].push(item);
    }
    (0..n)
        .map(|t| {
            let mut unit = Vec::new();
            for (shard, pool) in pools.iter().enumerate() {
                let (a, b) = (pool[0], pool[1]);
                if (t + shard) % 2 == 0 {
                    for _ in 0..3 {
                        unit.push(ItemSet::from_ids([a, b]));
                    }
                } else {
                    for _ in 0..3 {
                        unit.push(ItemSet::from_ids([a]));
                    }
                }
            }
            unit
        })
        .collect()
}

fn batch_body(units: &[Vec<ItemSet>]) -> Vec<u8> {
    let batch: Vec<Json> = units
        .iter()
        .map(|unit| {
            let txs: Vec<Json> = unit
                .iter()
                .map(|tx| {
                    Json::Array(tx.iter().map(|item| Json::from(item.id())).collect())
                })
                .collect();
            Json::Object(vec![("transactions".to_string(), Json::Array(txs))])
        })
        .collect();
    Json::Array(batch).render().into_bytes()
}

/// Mines `units` in-process: the oracle for what the cluster must serve.
fn oracle_rules(units: &[Vec<ItemSet>]) -> Vec<CyclicRule> {
    let mut miner = SlidingWindowMiner::new(mining_config(), WINDOW).unwrap();
    for unit in units {
        miner.push_unit(unit);
    }
    miner.query_rules(None).expect("enough units").as_ref().clone()
}

fn canonical(rules: &[CyclicRule]) -> BTreeSet<(String, Vec<(u64, u64)>)> {
    rules
        .iter()
        .map(|r| {
            (
                r.rule.to_string(),
                r.cycles
                    .iter()
                    .map(|c| (u64::from(c.length()), u64::from(c.offset())))
                    .collect(),
            )
        })
        .collect()
}

fn served(doc: &Json) -> BTreeSet<(String, Vec<(u64, u64)>)> {
    doc.get("rules")
        .and_then(Json::as_array)
        .expect("rules array")
        .iter()
        .map(|r| {
            let name = r.get("rule").and_then(Json::as_str).unwrap().to_string();
            let cycles = r
                .get("cycles")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .map(|c| {
                    (
                        c.get("length").and_then(Json::as_u64).unwrap(),
                        c.get("offset").and_then(Json::as_u64).unwrap(),
                    )
                })
                .collect();
            (name, cycles)
        })
        .collect()
}

fn wait_degraded_shards(client: &mut Client, want: u64, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let resp = client.request("GET", "/v1/health", None).expect("router health");
        let doc = Json::parse(&resp.body_text()).unwrap();
        if doc.get("degraded_shards").and_then(Json::as_u64) == Some(want) {
            return;
        }
        assert!(Instant::now() < deadline, "{what}: health never reached {want}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn sigkill_one_worker_degrades_then_cluster_fully_recovers() {
    let units = pure_units(10);
    let dirs: Vec<PathBuf> = (0..SHARDS).map(|i| temp_dir(&format!("w{i}"))).collect();

    let mut workers: Vec<Daemon> =
        (0..SHARDS).map(|i| spawn_worker(i, 0, &dirs[i as usize])).collect();
    let addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    let router = spawn_router(&addrs);
    let mut rc = Client::connect(&router.addr).unwrap();

    // A worker's health carries its shard identity.
    let mut wc = Client::connect(&addrs[1]).unwrap();
    let doc =
        Json::parse(&wc.request("GET", "/v1/health", None).unwrap().body_text()).unwrap();
    assert_eq!(doc.get("shard_id").and_then(Json::as_u64), Some(1));
    assert_eq!(doc.get("shard_count").and_then(Json::as_u64), Some(u64::from(SHARDS)));
    drop(wc);

    // Phase 1: six units through the router, fully applied, durable.
    let resp = rc
        .request("POST", "/v1/units?wait=true", Some(&batch_body(&units[..6])))
        .expect("ingest");
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    assert_eq!(
        Json::parse(&resp.body_text()).unwrap().get("partial").and_then(Json::as_bool),
        Some(false)
    );

    // SIGKILL shard 1 mid-stream — no flush, no goodbye.
    let victim = &mut workers[1];
    victim.child.kill().expect("SIGKILL");
    victim.child.wait().expect("reaped");
    let victim_port = victim.addr.rsplit(':').next().unwrap().parse::<u16>().unwrap();

    // Phase 2: two more units. The router degrades rather than failing.
    let resp = rc
        .request("POST", "/v1/units", Some(&batch_body(&units[6..8])))
        .expect("degraded ingest");
    assert_eq!(resp.status, 202, "{}", resp.body_text());
    let doc = Json::parse(&resp.body_text()).unwrap();
    assert_eq!(doc.get("partial").and_then(Json::as_bool), Some(true));
    assert_eq!(resp.header("x-car-shards-degraded"), Some("1"));
    wait_degraded_shards(&mut rc, 1, "after SIGKILL");

    // Degraded queries serve exactly the surviving shards' rules: the
    // oracle mines the same eight units minus shard 1's transactions.
    let ring = ShardRing::new(SHARDS).unwrap();
    let surviving: Vec<Vec<ItemSet>> = units[..8]
        .iter()
        .map(|unit| {
            let mut splits = ring.split_unit(unit, PartitionKey::MinItem);
            splits.remove(1);
            splits.into_iter().flatten().collect()
        })
        .collect();
    let resp = rc.request("GET", "/v1/rules", None).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let doc = Json::parse(&resp.body_text()).unwrap();
    assert_eq!(doc.get("partial").and_then(Json::as_bool), Some(true));
    assert_eq!(doc.get("degraded").map(Json::render), Some("[1]".to_string()));
    assert_eq!(resp.header("x-car-shards-degraded"), Some("1"));
    let expected = oracle_rules(&surviving);
    assert!(!expected.is_empty(), "survivors should still serve planted rules");
    assert_eq!(served(&doc), canonical(&expected));

    // Phase 3: restart shard 1 on its old port and data dir. The WAL
    // restores its acknowledged sub-units; the router replays the two
    // it missed and re-admits it.
    workers[1] = spawn_worker(1, victim_port, &dirs[1]);
    wait_degraded_shards(&mut rc, 0, "after restart");

    // Phase 4: two final units, then exactness against a single node
    // that saw all ten.
    let resp = rc
        .request("POST", "/v1/units?wait=true", Some(&batch_body(&units[8..])))
        .expect("ingest after recovery");
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let doc = Json::parse(&resp.body_text()).unwrap();
    assert_eq!(doc.get("partial").and_then(Json::as_bool), Some(false));

    let resp = rc.request("GET", "/v1/rules", None).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let doc = Json::parse(&resp.body_text()).unwrap();
    assert_eq!(doc.get("partial").and_then(Json::as_bool), Some(false));
    assert!(resp.header("x-car-shards-degraded").is_none());
    assert_eq!(
        served(&doc),
        canonical(&oracle_rules(&units)),
        "recovered cluster must serve exactly the single-node rules"
    );

    // Graceful teardown: router first, then the workers.
    let resp = rc.request("POST", "/v1/shutdown", None).unwrap();
    assert_eq!(resp.status, 200);
    drop(rc);
    let mut router = router;
    assert!(router.child.wait().expect("reaped").success());
    for (i, mut worker) in workers.into_iter().enumerate() {
        let mut c = Client::connect(&worker.addr).unwrap();
        let resp = c.request("POST", "/v1/shutdown", None).unwrap();
        assert_eq!(resp.status, 200);
        drop(c);
        assert!(worker.child.wait().expect("reaped").success(), "worker {i}");
    }
    for dir in dirs {
        std::fs::remove_dir_all(dir).unwrap();
    }
}

#[test]
fn spawn_mode_boots_its_own_workers_and_shuts_them_down() {
    let router = spawn_banner(
        &["shard", "--port", "0", "--shards", "2", "--window", "8", "--l-max", "2"],
        "car-shard router listening on http://",
    );
    let mut rc = Client::connect(&router.addr).unwrap();

    let units = pure_units(4);
    let resp = rc
        .request("POST", "/v1/units?wait=true", Some(&batch_body(&units)))
        .expect("ingest");
    assert_eq!(resp.status, 200, "{}", resp.body_text());

    let resp = rc.request("GET", "/v1/rules", None).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());

    let metrics = rc.request("GET", "/metrics", None).unwrap().body_text();
    assert!(metrics.contains("car_shard_fanout_total"));
    assert!(metrics.contains("car_shard_workers_up 2"));

    // Shutting the router down also shuts down its spawned workers.
    let resp = rc.request("POST", "/v1/shutdown", None).unwrap();
    assert_eq!(resp.status, 200);
    drop(rc);
    let mut router = router;
    assert!(router.child.wait().expect("reaped").success());
}
