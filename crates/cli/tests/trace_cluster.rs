//! Tracing acceptance test: a 3-shard cluster with a chaos delay proxy
//! in front of one worker. A traced `/v1/rules` fan-out must yield one
//! assembled trace with a `router.leg.rules` span per shard, each
//! carrying the worker's own `serve.request` span shipped back through
//! the proxy — and the chaos-delayed shard's leg measurably longest.
//!
//! The chaos delay is applied per *connection* (at accept, before any
//! byte is forwarded), while the router keeps leg connections alive.
//! To make the delay land on the traced request the test ingests
//! directly into the workers, starts the router with a one-hour probe
//! interval (only the startup baseline probe runs), and lets the
//! workers' short `--io-timeout-secs` close the idle leg connections.
//! The traced fan-out then reconnects every leg; shard 1's reconnect
//! goes through the proxy and eats the full pre-forward delay.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use car_chaos::{run_proxy, ChaosConfig, ChaosHandle, ScheduleConfig};
use car_itemset::ItemSet;
use car_serve::json::Json;
use car_serve::Client;
use car_shard::ShardRing;

const SHARDS: u32 = 3;
const DELAYED_SHARD: usize = 1;
/// Pre-forward delay on every connection through the chaos proxy.
const DELAY_MS: u64 = 400;
/// Worker-side idle timeout; the test sleeps past it so the router's
/// baseline-probe connections are closed before the traced request.
const WORKER_IO_TIMEOUT_SECS: u64 = 2;
/// Client-chosen trace id whose low 64 bits are divisible by the tail
/// sampler's 1-in-16 modulus, so retention never depends on timing.
const TRACE_ID: &str = "000000000000000000000000000000c0";

/// Kills the child on drop so a failing assertion never leaks a daemon.
struct Daemon {
    child: Child,
    addr: String,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns a `car` subcommand and waits for `banner` on stdout.
fn spawn_banner(args: &[&str], banner: &str) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_car"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("car binary spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .unwrap_or_else(|| panic!("process exited before `{banner}`"))
            .expect("readable stdout");
        if let Some(rest) = line.strip_prefix(banner) {
            break rest.trim().to_string();
        }
    };
    std::thread::spawn(move || for _ in lines {});
    Daemon { child, addr }
}

fn spawn_worker(shard_id: u32) -> Daemon {
    let id = shard_id.to_string();
    let count = SHARDS.to_string();
    let io_timeout = WORKER_IO_TIMEOUT_SECS.to_string();
    spawn_banner(
        &[
            "serve",
            "--port",
            "0",
            "--shard-id",
            &id,
            "--shard-count",
            &count,
            "--window",
            "16",
            "--min-support-count",
            "2",
            "--min-confidence",
            "0.5",
            "--l-min",
            "2",
            "--l-max",
            "4",
            "--io-timeout-secs",
            &io_timeout,
        ],
        "car-serve listening on http://",
    )
}

/// A delay-only chaos proxy: every accepted connection sleeps
/// `DELAY_MS` before the first byte is forwarded.
fn spawn_delay_proxy(upstream: &str) -> ChaosHandle {
    run_proxy(ChaosConfig {
        listen: "127.0.0.1:0".into(),
        upstream: upstream.to_string(),
        seed: 5,
        schedule: ScheduleConfig {
            delay: Some((1.0, DELAY_MS, DELAY_MS)),
            ..ScheduleConfig::default()
        },
        arm_on_start: false,
    })
    .expect("chaos proxy boots")
}

/// Units where every shard owns a planted alternating rule, so all
/// three workers are `ready` and answer `/v1/rules` with data.
fn planted_units(n: usize) -> Vec<Vec<ItemSet>> {
    let ring = ShardRing::new(SHARDS).unwrap();
    let mut pools: Vec<Vec<u32>> = vec![Vec::new(); SHARDS as usize];
    for item in 0..64u32 {
        pools[ring.owner_of_key(u64::from(item)) as usize].push(item);
    }
    (0..n)
        .map(|t| {
            let mut unit = Vec::new();
            for (shard, pool) in pools.iter().enumerate() {
                let (a, b) = (pool[0], pool[1]);
                if (t + shard) % 2 == 0 {
                    for _ in 0..3 {
                        unit.push(ItemSet::from_ids([a, b]));
                    }
                } else {
                    for _ in 0..3 {
                        unit.push(ItemSet::from_ids([a]));
                    }
                }
            }
            unit
        })
        .collect()
}

fn batch_body(units: &[Vec<ItemSet>]) -> Vec<u8> {
    let batch: Vec<Json> = units
        .iter()
        .map(|unit| {
            let txs: Vec<Json> = unit
                .iter()
                .map(|tx| {
                    Json::Array(tx.iter().map(|item| Json::from(item.id())).collect())
                })
                .collect();
            Json::Object(vec![("transactions".to_string(), Json::Array(txs))])
        })
        .collect();
    Json::Array(batch).render().into_bytes()
}

/// One span, pulled out of the assembled-trace JSON.
struct Span {
    uid: String,
    parent: Option<String>,
    name: String,
    dur_us: u64,
    attrs: Vec<(String, String)>,
}

impl Span {
    fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

fn parse_spans(doc: &Json) -> Vec<Span> {
    doc.get("spans")
        .and_then(Json::as_array)
        .expect("spans array")
        .iter()
        .map(|s| Span {
            uid: s.get("uid").and_then(Json::as_str).expect("uid").to_string(),
            parent: s.get("parent").and_then(Json::as_str).map(str::to_string),
            name: s.get("name").and_then(Json::as_str).expect("name").to_string(),
            dur_us: s.get("dur_us").and_then(Json::as_u64).unwrap_or(0),
            attrs: match s.get("attrs") {
                Some(Json::Object(fields)) => fields
                    .iter()
                    .filter_map(|(k, v)| v.as_str().map(|v| (k.clone(), v.to_string())))
                    .collect(),
                _ => Vec::new(),
            },
        })
        .collect()
}

#[test]
fn chaos_delayed_shard_shows_up_as_the_longest_leg() {
    let units = planted_units(8);
    let workers: Vec<Daemon> = (0..SHARDS).map(spawn_worker).collect();

    // Ingest directly into every worker (each filters to its own
    // shard), so all three are `ready` before the router's baseline
    // probe and the router's leg clients stay untouched until the
    // traced fan-out.
    for worker in &workers {
        let mut c = Client::connect(&worker.addr).expect("worker reachable");
        let resp = c
            .request("POST", "/v1/units?wait=true", Some(&batch_body(&units)))
            .expect("direct ingest");
        assert!(
            (200..300).contains(&resp.status),
            "{} {}",
            resp.status,
            resp.body_text()
        );
        let doc = Json::parse(&resp.body_text()).unwrap();
        assert_eq!(doc.get("applied").and_then(Json::as_bool), Some(true));
    }

    // Shard 1 sits behind the delay proxy; the others are direct.
    let proxy = spawn_delay_proxy(&workers[DELAYED_SHARD].addr);
    let mut leg_addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    leg_addrs[DELAYED_SHARD] = proxy.addr().to_string();

    let router = spawn_banner(
        &[
            "shard",
            "--port",
            "0",
            "--workers",
            &leg_addrs.join(","),
            // Only the startup baseline probe runs during the test, so
            // no probe traffic re-warms the leg connections after the
            // workers' idle timeout closes them.
            "--probe-interval-ms",
            "3600000",
            "--retry",
            "2",
            "--timeout-secs",
            "5",
        ],
        "car-shard router listening on http://",
    );
    let mut rc =
        Client::connect_with_timeout(&router.addr, Duration::from_secs(30)).unwrap();

    // Let the workers' io timeout close every idle leg connection; the
    // traced request below must reconnect each leg, and shard 1's
    // reconnect pays the proxy's pre-forward delay.
    std::thread::sleep(Duration::from_secs(WORKER_IO_TIMEOUT_SECS + 1));

    let resp = rc
        .try_request(
            "GET",
            "/v1/rules",
            &[("x-car-trace-id", TRACE_ID.to_string())],
            None,
        )
        .expect("traced rules fan-out");
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    assert_eq!(resp.header("x-car-trace-id"), Some(TRACE_ID));
    let doc = Json::parse(&resp.body_text()).unwrap();
    assert_eq!(doc.get("partial").and_then(Json::as_bool), Some(false));

    // The trace must be retained (sampled id; the delayed leg also
    // pushes it over the slow threshold) and assemble into one tree.
    let resp = rc
        .request("GET", &format!("/v1/debug/traces?trace_id={TRACE_ID}"), None)
        .expect("trace fetch");
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let doc = Json::parse(&resp.body_text()).unwrap();
    assert_eq!(doc.get("trace_id").and_then(Json::as_str), Some(TRACE_ID));
    let spans = parse_spans(&doc);

    let root = &spans[0];
    assert_eq!(root.name, "router.request");
    assert!(root.parent.is_none());
    assert_eq!(root.attr("route"), Some("rules"));

    // One leg per shard, every one answered by its worker.
    let legs: Vec<&Span> =
        spans.iter().filter(|s| s.name == "router.leg.rules").collect();
    assert_eq!(legs.len(), SHARDS as usize, "one rules leg per shard");
    let mut shard_attrs: Vec<&str> =
        legs.iter().filter_map(|l| l.attr("shard")).collect();
    shard_attrs.sort_unstable();
    assert_eq!(shard_attrs, ["0", "1", "2"]);
    for leg in &legs {
        assert_eq!(leg.parent.as_deref(), Some(root.uid.as_str()));
        assert_eq!(leg.attr("outcome"), Some("ok"), "shard {:?}", leg.attr("shard"));
        // The worker's own span came back through the wire (for shard 1,
        // through the chaos proxy) and nests under this leg.
        let child = spans
            .iter()
            .find(|s| s.parent.as_deref() == Some(leg.uid.as_str()))
            .unwrap_or_else(|| {
                panic!("leg for shard {:?} has no worker span", leg.attr("shard"))
            });
        assert_eq!(child.name, "serve.request");
        assert_eq!(child.attr("route"), Some("rules"));
    }

    // The chaos-delayed shard's leg is measurably the longest: it ate
    // the full pre-forward delay, the direct legs only a reconnect.
    let delayed =
        legs.iter().find(|l| l.attr("shard") == Some("1")).expect("delayed shard leg");
    let delay_floor_us = DELAY_MS.saturating_mul(1_000).saturating_mul(3) / 4;
    assert!(
        delayed.dur_us >= delay_floor_us,
        "delayed leg {}us must carry the {DELAY_MS}ms connection delay",
        delayed.dur_us
    );
    for leg in &legs {
        if leg.attr("shard") == Some("1") {
            continue;
        }
        assert!(
            leg.dur_us.saturating_mul(2) <= delayed.dur_us,
            "shard {:?} leg {}us should be far below the delayed leg {}us",
            leg.attr("shard"),
            leg.dur_us,
            delayed.dur_us
        );
    }

    // The same trace exports as Chrome trace_event JSON.
    let resp = rc
        .request(
            "GET",
            &format!("/v1/debug/traces?trace_id={TRACE_ID}&format=chrome"),
            None,
        )
        .expect("chrome export");
    assert_eq!(resp.status, 200);
    let chrome = Json::parse(&resp.body_text()).expect("chrome export parses");
    let events =
        chrome.get("traceEvents").and_then(Json::as_array).expect("traceEvents array");
    assert_eq!(events.len(), spans.len());

    // Graceful teardown: router first, then proxy, then the workers.
    let resp = rc.request("POST", "/v1/shutdown", None).unwrap();
    assert_eq!(resp.status, 200);
    drop(rc);
    let mut router = router;
    assert!(router.child.wait().expect("reaped").success());
    let mut proxy = proxy;
    proxy.stop();
    for (i, mut worker) in workers.into_iter().enumerate() {
        let mut c = Client::connect(&worker.addr).unwrap();
        let resp = c.request("POST", "/v1/shutdown", None).unwrap();
        assert_eq!(resp.status, 200);
        drop(c);
        assert!(worker.child.wait().expect("reaped").success(), "worker {i}");
    }
}
