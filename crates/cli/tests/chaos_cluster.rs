//! Chaos acceptance test: the sharded cluster behind deterministic
//! fault-injecting proxies. Every worker sits behind a `car-chaos`
//! proxy that delays every connection a few milliseconds; the proxy in
//! front of shard 1 additionally carries a timed full partition. The
//! test ingests through the faults, partitions shard 1 mid-stream,
//! watches its circuit breaker open, lets the partition heal, and then
//! requires byte-exact convergence with a no-fault single-node oracle —
//! the replay ring must deliver every sub-unit the partition swallowed.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use car_chaos::{
    run_proxy, ChaosConfig, ChaosHandle, Direction, FaultSchedule, PartitionWindow,
    ScheduleConfig,
};
use car_core::window::SlidingWindowMiner;
use car_core::{CyclicRule, MiningConfig};
use car_itemset::ItemSet;
use car_serve::json::Json;
use car_serve::Client;
use car_shard::ShardRing;

const SHARDS: u32 = 3;
const WINDOW: usize = 16;
const CHAOS_SEED: u64 = 11;
// The partition must outlive two probe timeouts (2 × `--timeout-secs`)
// so the breaker provably opens while the link is still down, with
// headroom for a loaded machine.
const PARTITION: Duration = Duration::from_secs(6);

/// Kills the child on drop so a failing assertion never leaks a daemon.
struct Daemon {
    child: Child,
    addr: String,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns a `car` subcommand and waits for `banner` on stdout.
fn spawn_banner(args: &[&str], banner: &str) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_car"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("car binary spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .unwrap_or_else(|| panic!("process exited before `{banner}`"))
            .expect("readable stdout");
        if let Some(rest) = line.strip_prefix(banner) {
            break rest.trim().to_string();
        }
    };
    std::thread::spawn(move || for _ in lines {});
    Daemon { child, addr }
}

fn spawn_worker(shard_id: u32) -> Daemon {
    let id = shard_id.to_string();
    let count = SHARDS.to_string();
    spawn_banner(
        &[
            "serve",
            "--port",
            "0",
            "--shard-id",
            &id,
            "--shard-count",
            &count,
            "--window",
            "16",
            "--min-support-count",
            "2",
            "--min-confidence",
            "0.5",
            "--l-min",
            "2",
            "--l-max",
            "4",
        ],
        "car-serve listening on http://",
    )
}

/// Every proxy delays each connection 1-3ms (the always-on fault the
/// cluster must shrug off); the schedule in front of the victim shard
/// additionally carries the timed partition, armed later by the test.
fn delay_schedule() -> ScheduleConfig {
    ScheduleConfig { delay: Some((1.0, 1, 3)), ..ScheduleConfig::default() }
}

fn spawn_proxy(upstream: &str, partition: bool) -> ChaosHandle {
    let mut schedule = delay_schedule();
    if partition {
        schedule.partitions = vec![PartitionWindow {
            start: Duration::ZERO,
            duration: PARTITION,
            dir: Direction::Both,
        }];
    }
    run_proxy(ChaosConfig {
        listen: "127.0.0.1:0".into(),
        upstream: upstream.to_string(),
        seed: CHAOS_SEED,
        schedule,
        arm_on_start: false,
    })
    .expect("chaos proxy boots")
}

fn mining_config() -> MiningConfig {
    MiningConfig::builder()
        .min_support_count(2)
        .min_confidence(0.5)
        .cycle_bounds(2, 4)
        .build()
        .unwrap()
}

/// Partition-pure units with one planted alternating rule per shard.
fn pure_units(n: usize) -> Vec<Vec<ItemSet>> {
    let ring = ShardRing::new(SHARDS).unwrap();
    let mut pools: Vec<Vec<u32>> = vec![Vec::new(); SHARDS as usize];
    for item in 0..64u32 {
        pools[ring.owner_of_key(u64::from(item)) as usize].push(item);
    }
    (0..n)
        .map(|t| {
            let mut unit = Vec::new();
            for (shard, pool) in pools.iter().enumerate() {
                let (a, b) = (pool[0], pool[1]);
                if (t + shard) % 2 == 0 {
                    for _ in 0..3 {
                        unit.push(ItemSet::from_ids([a, b]));
                    }
                } else {
                    for _ in 0..3 {
                        unit.push(ItemSet::from_ids([a]));
                    }
                }
            }
            unit
        })
        .collect()
}

fn batch_body(units: &[Vec<ItemSet>]) -> Vec<u8> {
    let batch: Vec<Json> = units
        .iter()
        .map(|unit| {
            let txs: Vec<Json> = unit
                .iter()
                .map(|tx| {
                    Json::Array(tx.iter().map(|item| Json::from(item.id())).collect())
                })
                .collect();
            Json::Object(vec![("transactions".to_string(), Json::Array(txs))])
        })
        .collect();
    Json::Array(batch).render().into_bytes()
}

/// Mines `units` in-process with no faults anywhere: the oracle the
/// healed cluster must match exactly.
fn oracle_rules(units: &[Vec<ItemSet>]) -> Vec<CyclicRule> {
    let mut miner = SlidingWindowMiner::new(mining_config(), WINDOW).unwrap();
    for unit in units {
        miner.push_unit(unit);
    }
    miner.query_rules(None).expect("enough units").as_ref().clone()
}

fn canonical(rules: &[CyclicRule]) -> BTreeSet<(String, Vec<(u64, u64)>)> {
    rules
        .iter()
        .map(|r| {
            (
                r.rule.to_string(),
                r.cycles
                    .iter()
                    .map(|c| (u64::from(c.length()), u64::from(c.offset())))
                    .collect(),
            )
        })
        .collect()
}

fn served(doc: &Json) -> BTreeSet<(String, Vec<(u64, u64)>)> {
    doc.get("rules")
        .and_then(Json::as_array)
        .expect("rules array")
        .iter()
        .map(|r| {
            let name = r.get("rule").and_then(Json::as_str).unwrap().to_string();
            let cycles = r
                .get("cycles")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .map(|c| {
                    (
                        c.get("length").and_then(Json::as_u64).unwrap(),
                        c.get("offset").and_then(Json::as_u64).unwrap(),
                    )
                })
                .collect();
            (name, cycles)
        })
        .collect()
}

fn router_health(client: &mut Client) -> Json {
    let resp = client.request("GET", "/v1/health", None).expect("router health");
    Json::parse(&resp.body_text()).expect("health json")
}

fn breaker_state(doc: &Json, shard: u64) -> Option<String> {
    doc.get("breakers")
        .and_then(Json::as_array)?
        .iter()
        .find(|b| b.get("shard_id").and_then(Json::as_u64) == Some(shard))?
        .get("state")
        .and_then(Json::as_str)
        .map(str::to_string)
}

fn wait_breaker_state(client: &mut Client, shard: u64, want: &str, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let doc = router_health(client);
        if breaker_state(&doc, shard).as_deref() == Some(want) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{what}: shard {shard} breaker never reached `{want}`; health {}",
            doc.render()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn wait_degraded_shards(client: &mut Client, want: u64, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let doc = router_health(client);
        if doc.get("degraded_shards").and_then(Json::as_u64) == Some(want) {
            return;
        }
        assert!(Instant::now() < deadline, "{what}: health never reached {want}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn partitioned_shard_opens_breaker_then_cluster_converges_exactly() {
    let units = pure_units(10);

    let workers: Vec<Daemon> = (0..SHARDS).map(spawn_worker).collect();
    let mut proxies: Vec<ChaosHandle> =
        workers.iter().enumerate().map(|(i, w)| spawn_proxy(&w.addr, i == 1)).collect();
    let proxy_addrs: Vec<String> = proxies.iter().map(|p| p.addr().to_string()).collect();

    let router = spawn_banner(
        &[
            "shard",
            "--port",
            "0",
            "--workers",
            &proxy_addrs.join(","),
            "--probe-interval-ms",
            "100",
            "--retry",
            "1",
            "--timeout-secs",
            "2",
            "--breaker-failures",
            "2",
            "--breaker-cooldown-ms",
            "300",
        ],
        "car-shard router listening on http://",
    );
    let mut rc =
        Client::connect_with_timeout(&router.addr, Duration::from_secs(30)).unwrap();

    // Phase 1: baseline ingest through the (delay-only) faults.
    let resp = rc
        .request("POST", "/v1/units?wait=true", Some(&batch_body(&units[..4])))
        .expect("baseline ingest");
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    assert_eq!(
        Json::parse(&resp.body_text()).unwrap().get("partial").and_then(Json::as_bool),
        Some(false)
    );
    let doc = router_health(&mut rc);
    assert_eq!(breaker_state(&doc, 1).as_deref(), Some("closed"));

    // Phase 2: partition shard 1 (both directions) and keep ingesting.
    // The leg into the partition times out; the router answers partial
    // while the breaker counts, and the probes open it shortly after.
    proxies[1].arm_partitions();
    let resp = rc
        .request("POST", "/v1/units", Some(&batch_body(&units[4..6])))
        .expect("ingest during partition");
    assert_eq!(resp.status, 202, "{}", resp.body_text());
    let doc = Json::parse(&resp.body_text()).unwrap();
    assert_eq!(doc.get("partial").and_then(Json::as_bool), Some(true));
    assert_eq!(resp.header("x-car-shards-degraded"), Some("1"));
    wait_breaker_state(&mut rc, 1, "open", "during partition");

    // With the breaker open the excluded leg is skipped outright: the
    // ingest is immediately partial and the sub-units join the replay
    // ring alongside the ones the timeout swallowed.
    let resp = rc
        .request("POST", "/v1/units", Some(&batch_body(&units[6..8])))
        .expect("ingest while open");
    assert_eq!(resp.status, 202, "{}", resp.body_text());
    assert_eq!(
        Json::parse(&resp.body_text()).unwrap().get("partial").and_then(Json::as_bool),
        Some(true)
    );

    // Phase 3: the partition window closes on its own; probes go
    // Half-Open, the catch-up replay delivers every missed sub-unit,
    // and only then does the breaker close and the shard re-admit.
    wait_breaker_state(&mut rc, 1, "closed", "after heal");
    wait_degraded_shards(&mut rc, 0, "after heal");
    let doc = router_health(&mut rc);
    let opens = doc
        .get("breakers")
        .and_then(Json::as_array)
        .and_then(|b| b.get(1))
        .and_then(|b| b.get("opens"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(opens >= 1, "the partition must have opened the breaker: {}", doc.render());

    // Phase 4: final units, then byte-exact convergence with the
    // no-fault oracle — nothing the partition swallowed may be missing,
    // nothing replayed may be duplicated.
    let resp = rc
        .request("POST", "/v1/units?wait=true", Some(&batch_body(&units[8..])))
        .expect("ingest after heal");
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    assert_eq!(
        Json::parse(&resp.body_text()).unwrap().get("partial").and_then(Json::as_bool),
        Some(false)
    );

    let resp = rc.request("GET", "/v1/rules", None).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let doc = Json::parse(&resp.body_text()).unwrap();
    assert_eq!(doc.get("partial").and_then(Json::as_bool), Some(false));
    assert!(resp.header("x-car-shards-degraded").is_none());
    let expected = oracle_rules(&units);
    assert!(!expected.is_empty(), "the oracle must find the planted rules");
    assert_eq!(
        served(&doc),
        canonical(&expected),
        "healed cluster must serve exactly the no-fault single-node rules"
    );

    // The breaker gauges the CI smoke greps for are exported.
    let metrics = rc.request("GET", "/metrics", None).unwrap().body_text();
    assert!(metrics.contains("car_shard_breaker_state"), "{metrics}");

    // The whole fault run is reproducible from the seed alone: replay
    // the schedule for as many connections as the pass-through proxy
    // served and the traces must agree byte for byte.
    let trace = proxies[0].trace();
    assert!(!trace.is_empty(), "the proxy must have carried connections");
    let replay = FaultSchedule::new(delay_schedule(), CHAOS_SEED);
    for _ in 0..trace.len() {
        replay.plan_conn();
    }
    assert_eq!(replay.trace(), trace, "trace must replay from the seed");

    // Graceful teardown: router, proxies, then the workers directly.
    let resp = rc.request("POST", "/v1/shutdown", None).unwrap();
    assert_eq!(resp.status, 200);
    drop(rc);
    let mut router = router;
    assert!(router.child.wait().expect("reaped").success());
    for proxy in &mut proxies {
        proxy.stop();
    }
    for (i, mut worker) in workers.into_iter().enumerate() {
        let mut c = Client::connect(&worker.addr).unwrap();
        let resp = c.request("POST", "/v1/shutdown", None).unwrap();
        assert_eq!(resp.status, 200);
        drop(c);
        assert!(worker.child.wait().expect("reaped").success(), "worker {i}");
    }
}
