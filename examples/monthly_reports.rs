//! Calendar-aligned mining with named items: monthly seasonality in two
//! years of timestamped purchase records.
//!
//! ```sh
//! cargo run --example monthly_reports
//! ```
//!
//! The paper's opening example is monthly sales data. Here purchases are
//! raw `(unix timestamp, item names)` rows; [`Granularity::Month`]
//! segments them on true month boundaries (28–31 days), a
//! [`Vocabulary`] maps names to compact ids and back, and the miner
//! reveals that heaters and thermal socks sell together every December —
//! a cycle of length 12 over monthly units.

use cyclic_association_rules::itemset::calendar::{CivilDate, Granularity};
use cyclic_association_rules::itemset::{ItemSet, Vocabulary};
use cyclic_association_rules::{Algorithm, CyclicRuleMiner, MiningConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut vocab = Vocabulary::new();
    let heater = vocab.intern("space-heater");
    let socks = vocab.intern("thermal-socks");
    let bread = vocab.intern("bread");
    let milk = vocab.intern("milk");
    let fan = vocab.intern("fan");

    // Three years of purchases: staples year-round, heaters + socks each
    // December, fans each July.
    let mut rows: Vec<(i64, ItemSet)> = Vec::new();
    let mut noise = 0xBEEFu64;
    let mut next_noise = move || {
        noise ^= noise << 13;
        noise ^= noise >> 7;
        noise ^= noise << 17;
        noise
    };
    for year in 2021..=2023 {
        for month in 1..=12u8 {
            let month_start = CivilDate { year, month, day: 1 }.to_days() * 86_400;
            for purchase in 0..30 {
                let t = month_start + purchase * 86_400 + (next_noise() % 3600) as i64;
                let mut items = vec![bread];
                if next_noise() % 2 == 0 {
                    items.push(milk);
                }
                if month == 12 && purchase % 4 != 0 {
                    items.push(heater);
                    items.push(socks);
                }
                if month == 7 && purchase % 3 != 0 {
                    items.push(fan);
                }
                rows.push((t, ItemSet::from_items(items)));
            }
        }
    }

    let db = Granularity::Month.segment(rows);
    println!("{} monthly units, {} purchases", db.num_units(), db.num_transactions());
    assert_eq!(db.num_units(), 36);

    let config = MiningConfig::builder()
        .min_support_fraction(0.5)
        .min_confidence(0.7)
        .cycle_bounds(2, 12)
        .build()?;
    let outcome = CyclicRuleMiner::new(config, Algorithm::interleaved()).mine(&db)?;

    println!("\ncyclic rules (named):");
    for r in &outcome.rules {
        println!(
            "  {} => {} @ {}",
            vocab.render(&r.rule.antecedent),
            vocab.render(&r.rule.consequent),
            r.cycles.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",")
        );
    }

    // December = month index 11 within each year; the first unit is
    // January 2021, so the December offset is 11.
    let winter = outcome
        .rules
        .iter()
        .find(|r| {
            r.rule.antecedent == ItemSet::single(heater)
                && r.rule.consequent == ItemSet::single(socks)
        })
        .expect("heater => socks must be cyclic");
    assert!(
        winter.cycles.iter().any(|c| (c.length(), c.offset()) == (12, 11)),
        "expected a yearly December cycle, got {:?}",
        winter.cycles
    );
    println!("\nDecember pattern confirmed: {}", winter);
    Ok(())
}
