//! Operations telemetry: find event combinations that recur on a daily
//! schedule in timestamped logs.
//!
//! ```sh
//! cargo run --example server_logs
//! ```
//!
//! Log events (alerts, job starts, resource warnings) are grouped into
//! "incident windows" — co-occurring event sets with a Unix timestamp.
//! Segmenting by hour yields a time-unit database; the miner then reveals
//! that `{nightly_backup} => {high_io_latency}` holds every day in the
//! 02:00 hour, an actionable scheduling insight. This example exercises
//! the raw-timestamp ingestion path (`SegmentedDb::from_timestamps`) and
//! approximate mining on noisy data.

use cyclic_association_rules::core::approx::mine_approx;
use cyclic_association_rules::itemset::{ItemSet, SegmentedDb};
use cyclic_association_rules::{Algorithm, CyclicRuleMiner, MiningConfig};

// Event vocabulary.
const NIGHTLY_BACKUP: u32 = 1;
const HIGH_IO_LATENCY: u32 = 2;
const CRON_REPORTS: u32 = 3;
const CACHE_EVICTION: u32 = 4;
const RANDOM_NOISE: u32 = 5;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const HOUR: u64 = 3600;
    const DAYS: u64 = 6;

    // Build 6 days of hourly incident windows.
    let mut rows: Vec<(u64, ItemSet)> = Vec::new();
    let mut noise_state = 0x5eed_u64;
    let mut noise = move || {
        // Tiny xorshift for deterministic pseudo-noise without a dep.
        noise_state ^= noise_state << 13;
        noise_state ^= noise_state >> 7;
        noise_state ^= noise_state << 17;
        noise_state
    };

    for day in 0..DAYS {
        for hour in 0..24u64 {
            let t = day * 24 * HOUR + hour * HOUR + 10;
            // Several incident windows per hour.
            for w in 0..4u64 {
                let ts = t + w * 600;
                let mut events = vec![RANDOM_NOISE + (noise() % 20) as u32];
                if hour == 2 {
                    // The 02:00 backup saturates I/O every night…
                    events.push(NIGHTLY_BACKUP);
                    events.push(HIGH_IO_LATENCY);
                }
                if hour == 2 && day == 3 && w < 3 {
                    // …except day 3, when the backup was skipped for
                    // maintenance in most windows (noise for the exact
                    // miner, budget for the approximate one).
                    events.retain(|&e| e != NIGHTLY_BACKUP && e != HIGH_IO_LATENCY);
                }
                if hour == 6 {
                    events.push(CRON_REPORTS);
                    if w % 2 == 0 {
                        events.push(CACHE_EVICTION);
                    }
                }
                rows.push((ts, ItemSet::from_ids(events)));
            }
        }
    }

    // Hourly segmentation: 144 units.
    let db = SegmentedDb::from_timestamps(rows, HOUR);
    println!(
        "{} incident windows across {} hourly units",
        db.num_transactions(),
        db.num_units()
    );

    let config = MiningConfig::builder()
        .min_support_fraction(0.5)
        .min_confidence(0.7)
        .cycle_bounds(24, 24) // daily schedules only
        .build()?;

    // Exact mining: the skipped backup on day 3 breaks the daily cycle.
    let exact = CyclicRuleMiner::new(config, Algorithm::interleaved()).mine(&db)?;
    let backup_rule = exact.rules.iter().find(|r| r.rule.to_string() == "{1} => {2}");
    println!(
        "exact mining finds the backup rule: {}",
        backup_rule.map_or("no".to_string(), |r| r.to_string())
    );
    assert!(backup_rule.is_none(), "day-3 maintenance must break the exact cycle");

    // The cron-report rule is unbroken and shows up exactly.
    let cron = exact
        .rules
        .iter()
        .find(|r| r.rule.to_string() == "{4} => {3}")
        .expect("cache eviction => cron reports holds every 06:00 hour");
    println!("exact daily rule: {cron}");

    // Approximate mining with a one-miss budget recovers the backup rule.
    let approx = mine_approx(&db, &config, 1)?;
    let recovered = approx
        .rules
        .iter()
        .find(|r| r.rule.to_string() == "{1} => {2}")
        .expect("approximate mining should tolerate the maintenance night");
    let cycle = &recovered.cycles[0];
    println!(
        "approximate mining recovers it: {} on cycle {} ({}  of {} nights missed)",
        recovered.rule, cycle.cycle, cycle.misses, cycle.occurrences
    );
    assert_eq!(cycle.cycle.length(), 24);
    assert_eq!(cycle.misses, 1);
    Ok(())
}
