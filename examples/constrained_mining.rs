//! Constraint-based cyclic rule mining: focus the search on the rules an
//! analyst actually asked about.
//!
//! ```sh
//! cargo run --release --example constrained_mining
//! ```
//!
//! A promotions team only cares about cyclic rules that *conclude* in
//! one of this quarter's promoted products. Constraining the output
//! turns thousands of rules into a short, ranked brief.

use cyclic_association_rules::core::constraints::{
    filter_outcome, mine_interleaved_constrained, RuleConstraints,
};
use cyclic_association_rules::core::MiningReport;
use cyclic_association_rules::datagen::{generate_cyclic, CyclicConfig};
use cyclic_association_rules::itemset::ItemSet;
use cyclic_association_rules::{
    Algorithm, CyclicRuleMiner, InterleavedOptions, MiningConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = generate_cyclic(
        &CyclicConfig::default()
            .with_units(32)
            .with_transactions_per_unit(500)
            .with_cycle_length_range(2, 8),
        17,
    );
    let config = MiningConfig::builder()
        .min_support_fraction(0.03)
        .min_confidence(0.6)
        .cycle_bounds(2, 8)
        .build()?;

    // Unconstrained: everything the data supports.
    let full = CyclicRuleMiner::new(config, Algorithm::interleaved()).mine(&data.db)?;
    println!("unconstrained mining: {} cyclic rules", full.rules.len());

    // This quarter's promoted products: the items of the first three
    // planted patterns (in a real deployment, a product list).
    let promoted: ItemSet =
        data.planted.iter().take(3).flat_map(|p| p.items.iter()).collect();
    println!("promoted products: {promoted}");

    let constraints = RuleConstraints::any().with_consequent_within(promoted.clone());
    let constrained = mine_interleaved_constrained(
        &data.db,
        &config,
        InterleavedOptions::all(),
        &constraints,
    )?;
    println!("rules concluding in promoted products: {}", constrained.rules.len());
    assert!(constrained.rules.len() < full.rules.len());
    assert_eq!(filter_outcome(&full, &constraints), constrained.rules);
    assert!(constrained.rules.iter().all(|r| r.rule.consequent.is_subset_of(&promoted)));

    // Rank what's left by coverage and print the brief.
    let report = MiningReport::new(&constrained, data.db.num_units(), 8);
    println!("\n{}", report.render());
    Ok(())
}
