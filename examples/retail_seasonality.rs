//! Retail seasonality: recover planted weekly patterns from synthetic
//! store data.
//!
//! ```sh
//! cargo run --release --example retail_seasonality
//! ```
//!
//! The scenario the ICDE'98 paper opens with: monthly/weekly sales data
//! hides rules that only hold in particular periods. We generate 8 weeks
//! of daily sales (56 time units) with Quest-style background traffic and
//! plant weekly patterns (cycle length 7) — e.g. "barbecue items sell
//! together on Saturdays" — then check the miner recovers every planted
//! schedule.

use cyclic_association_rules::datagen::{generate_cyclic, CyclicConfig, QuestConfig};
use cyclic_association_rules::{Algorithm, CyclicRuleMiner, MiningConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 56 daily units, 400 baskets a day, 300 products; 6 planted weekly
    // patterns (length 7, random weekday offsets).
    let config = CyclicConfig {
        quest: QuestConfig::default().with_num_items(300).with_avg_transaction_len(6.0),
        num_units: 56,
        transactions_per_unit: 400,
        num_cyclic_patterns: 6,
        cyclic_pattern_len: 2,
        cycle_length_range: (7, 7),
        boost: 0.75,
        max_planted_per_transaction: 2,
    };
    let data = generate_cyclic(&config, 2024);

    println!("planted weekly patterns:");
    for p in &data.planted {
        println!("  {} every week on offset {}", p.items, p.offset);
    }

    let mining = MiningConfig::builder()
        .min_support_fraction(0.15)
        .min_confidence(0.5)
        .cycle_bounds(2, 14)
        .build()?;
    let outcome =
        CyclicRuleMiner::new(mining, Algorithm::interleaved()).mine(&data.db)?;
    println!("\nmined {} cyclic rules in total", outcome.rules.len());

    // Check recovery: for each planted pattern {a, b}, the rule {a} => {b}
    // must carry a cycle that implies the planted weekly schedule (the
    // reported minimal cycle divides 7 with the right offset — for a
    // prime length this means exactly (7, offset), or a shorter cycle
    // that covers it, e.g. (1,0) if the pattern happens to hold daily).
    let mut recovered = 0;
    for p in &data.planted {
        let items: Vec<_> = p.items.iter().collect();
        let a = cyclic_association_rules::itemset::ItemSet::single(items[0]);
        let b = cyclic_association_rules::itemset::ItemSet::single(items[1]);
        let hit = outcome.rules.iter().find(|r| {
            r.rule.antecedent == a
                && r.rule.consequent == b
                && r.cycles.iter().any(|c| {
                    7 % c.length() == 0 && p.offset % c.length() == c.offset()
                        || (c.length(), c.offset()) == (7, p.offset)
                })
        });
        match hit {
            Some(rule) => {
                recovered += 1;
                println!("  recovered: {rule}");
            }
            None => println!("  MISSED: {} (offset {})", p.items, p.offset),
        }
    }
    println!("\nrecovered {recovered}/{} planted weekly schedules", data.planted.len());
    assert_eq!(recovered, data.planted.len(), "all planted patterns must be found");
    Ok(())
}
