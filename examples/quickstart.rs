//! Quickstart: mine cyclic association rules from a hand-built database.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! A tiny coffee-shop scenario: espresso (1) and croissant (2) sell
//! together every weekday morning unit; the weekend units (every third
//! unit here) look different. The miner recovers the rule
//! `{espresso} => {croissant}` with its cycle.

use cyclic_association_rules::itemset::{ItemSet, SegmentedDb};
use cyclic_association_rules::{Algorithm, CyclicRuleMiner, MiningConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build 9 time units: units 0,3,6 are "weekend" (tea & newspaper),
    // the rest are weekday mornings (espresso & croissant together).
    const ESPRESSO: u32 = 1;
    const CROISSANT: u32 = 2;
    const TEA: u32 = 3;
    const NEWSPAPER: u32 = 4;

    let weekday: Vec<ItemSet> = (0..20)
        .map(|i| {
            if i % 5 == 0 {
                ItemSet::from_ids([ESPRESSO]) // a few solo espressos
            } else {
                ItemSet::from_ids([ESPRESSO, CROISSANT])
            }
        })
        .collect();
    let weekend: Vec<ItemSet> =
        (0..20).map(|_| ItemSet::from_ids([TEA, NEWSPAPER])).collect();

    let units: Vec<Vec<ItemSet>> = (0..9)
        .map(|u| if u % 3 == 0 { weekend.clone() } else { weekday.clone() })
        .collect();
    let db = SegmentedDb::from_unit_itemsets(units);

    // Rules must reach 40% support and 70% confidence within a unit, and
    // we look for cycles of length 2 or 3.
    let config = MiningConfig::builder()
        .min_support_fraction(0.4)
        .min_confidence(0.7)
        .cycle_bounds(2, 3)
        .build()?;

    let outcome = CyclicRuleMiner::new(config, Algorithm::interleaved()).mine(&db)?;

    println!("{} cyclic association rules:", outcome.rules.len());
    for rule in &outcome.rules {
        println!("  {rule}");
    }
    println!();
    println!(
        "work: {} support computations, {} skipped by cycle skipping",
        outcome.stats.support_computations, outcome.stats.skipped_counts
    );

    // The espresso => croissant rule holds in units 1,2,4,5,7,8 — that is
    // cycles (3,1) and (3,2).
    let espresso_rule = outcome
        .rules
        .iter()
        .find(|r| r.rule.to_string() == "{1} => {2}")
        .expect("espresso => croissant should be cyclic");
    assert_eq!(
        espresso_rule.cycles.iter().map(|c| (c.length(), c.offset())).collect::<Vec<_>>(),
        vec![(3, 1), (3, 2)]
    );
    println!("recovered the planted weekday pattern: {espresso_rule}");
    Ok(())
}
