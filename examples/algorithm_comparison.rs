//! Compare the paper's two algorithms (and the INTERLEAVED ablations) on
//! one synthetic workload: identical results, very different work.
//!
//! ```sh
//! cargo run --release --example algorithm_comparison
//! ```

use std::time::Instant;

use cyclic_association_rules::datagen::{generate_cyclic, CyclicConfig};
use cyclic_association_rules::{
    Algorithm, CyclicRuleMiner, InterleavedOptions, MiningConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = generate_cyclic(
        &CyclicConfig::default()
            .with_units(32)
            .with_transactions_per_unit(400)
            .with_cycle_length_range(2, 8),
        7,
    );
    let config = MiningConfig::builder()
        .min_support_fraction(0.02)
        .min_confidence(0.6)
        .cycle_bounds(2, 8)
        .build()?;

    println!(
        "workload: {} units x {} transactions, {} planted cyclic patterns\n",
        data.db.num_units(),
        data.db.num_transactions() / data.db.num_units(),
        data.planted.len()
    );
    println!(
        "{:<28}{:>10}{:>16}{:>14}{:>8}",
        "algorithm", "time", "support counts", "skipped", "rules"
    );

    let variants: Vec<(&str, Algorithm)> = vec![
        ("SEQUENTIAL", Algorithm::Sequential),
        ("INTERLEAVED (all)", Algorithm::Interleaved(InterleavedOptions::all())),
        (
            "INTERLEAVED -pruning",
            Algorithm::Interleaved(InterleavedOptions::all().without_pruning()),
        ),
        (
            "INTERLEAVED -skipping",
            Algorithm::Interleaved(InterleavedOptions::all().without_skipping()),
        ),
        (
            "INTERLEAVED -elimination",
            Algorithm::Interleaved(InterleavedOptions::all().without_elimination()),
        ),
        ("INTERLEAVED none", Algorithm::Interleaved(InterleavedOptions::none())),
    ];

    let mut reference: Option<Vec<cyclic_association_rules::CyclicRule>> = None;
    for (name, algorithm) in variants {
        let miner = CyclicRuleMiner::new(config, algorithm);
        let start = Instant::now();
        let outcome = miner.mine(&data.db)?;
        let elapsed = start.elapsed();
        println!(
            "{:<28}{:>9.1?}{:>16}{:>14}{:>8}",
            name,
            elapsed,
            outcome.stats.support_computations,
            outcome.stats.skipped_counts,
            outcome.rules.len()
        );
        match &reference {
            None => reference = Some(outcome.rules),
            Some(expected) => assert_eq!(
                expected, &outcome.rules,
                "{name} produced different rules — equivalence violated"
            ),
        }
    }

    println!("\nall variants produced identical rules ✓");
    Ok(())
}
